// The conditional GAN of Section 4: generator + discriminator + the
// adversarial/L1 training procedure of Fig. 6 and Eq. 2.
//
//   D step: maximize log D(x,t) + log(1 - D(x,G(x,z)))
//   G step: minimize log(1 - D(x,G(x,z))) + λ_L1 ||t - G(x,z)||₁
// with the non-saturating -log D(x,G) form for the generator, Adam
// (lr 2e-4, β1 0.5, β2 0.999, ε 1e-8), batch size 1 — all per Section 5.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/discriminator.h"
#include "core/unet.h"
#include "nn/adam.h"
#include "nn/losses.h"

namespace paintplace::core {

struct Pix2PixConfig {
  GeneratorConfig generator;
  Index disc_base_channels = 64;
  float lambda_l1 = 50.0f;  ///< paper: "The L1 weight is 50"
  bool use_l1 = true;       ///< Sec. 5.3 ablation switch
  nn::AdamConfig adam;      ///< defaults already match the paper
  std::uint64_t seed = 1;

  DiscriminatorConfig discriminator_config() const {
    return DiscriminatorConfig{generator.in_channels + generator.out_channels,
                               disc_base_channels, generator.image_size, generator.norm,
                               seed ^ 0x9e3779b97f4a7c15ULL};
  }
};

/// Per-step (and per-epoch, averaged) loss components.
struct GanLosses {
  double d_loss = 0.0;   ///< discriminator BCE (real + fake halves averaged)
  double g_gan = 0.0;    ///< generator adversarial term
  double g_l1 = 0.0;     ///< unweighted L1 between G(x,z) and truth

  GanLosses& operator+=(const GanLosses& o) {
    d_loss += o.d_loss;
    g_gan += o.g_gan;
    g_l1 += o.g_l1;
    return *this;
  }
  GanLosses& operator/=(double n) {
    d_loss /= n;
    g_gan /= n;
    g_l1 /= n;
    return *this;
  }
};

/// Wall-clock seconds spent in each phase of one train_step, for the
/// training bench and the Trainer's per-epoch phase breakdown. The data
/// phase (batch assembly) happens outside the model and is timed by the
/// caller (see train::EpochStats).
struct StepTimings {
  double g_forward_s = 0.0;  ///< generator forward (one pass, whole batch)
  double d_step_s = 0.0;     ///< discriminator real+fake forward/backward + Adam
  double g_step_s = 0.0;     ///< generator adversarial/L1 backward + Adam

  StepTimings& operator+=(const StepTimings& o) {
    g_forward_s += o.g_forward_s;
    d_step_s += o.d_step_s;
    g_step_s += o.g_step_s;
    return *this;
  }
};

class Pix2Pix {
 public:
  explicit Pix2Pix(const Pix2PixConfig& config);

  const Pix2PixConfig& config() const { return config_; }
  UNetGenerator& generator() { return *generator_; }
  PatchDiscriminator& discriminator() { return *discriminator_; }

  /// One optimization step on an (x, truth) pair or mini-batch, both NCHW in
  /// [0,1] with matching batch dimension. With N > 1 this is true mini-batch
  /// training: losses are means over the whole batch, conv/deconv lower to
  /// wide batched GEMMs in forward AND backward, batch-norm statistics (if
  /// configured) are computed over the batch, and dropout draws one noise
  /// field for the batch. With per-sample normalisation (instance norm) and
  /// dropout disabled, a batch-N step is bit-identical to
  /// train_step_accumulated on the same samples.
  GanLosses train_step(const nn::Tensor& input01, const nn::Tensor& truth01,
                       StepTimings* timings = nullptr);

  /// Gradient accumulation: the same update as a batch-N train_step, computed
  /// one sample at a time (N forwards/backwards, one optimizer step, loss
  /// gradients scaled by 1/N). Peak activation memory stays at batch-1 cost —
  /// the fallback when the batched step does not fit. N must be a power of
  /// two so the 1/N scaling is exact; see docs/training.md for the
  /// equivalence guarantees.
  GanLosses train_step_accumulated(const std::vector<const nn::Tensor*>& inputs01,
                                   const std::vector<const nn::Tensor*>& truths01);

  /// Generator inference: [0,1] input -> [0,1] image tensor.
  nn::Tensor predict(const nn::Tensor& input01);

  /// Resets both Adam optimizers, optionally with a new learning rate —
  /// used when fine-tuning a trained model (strategy 2).
  void reset_optimizers(float lr);

  /// Snapshots both optimizers' moment/step state into `out` (keys under
  /// "opt_g/" and "opt_d/"). With the weights this is everything a
  /// bitwise-identical training resume needs; the Trainer stores it in
  /// trainer_state.ckpt.
  void save_optimizer_state(nn::TensorMap& out) const;

  /// Restores optimizer state written by save_optimizer_state. Returns
  /// false (leaving the freshly-initialized optimizers alone) when `map`
  /// has none — e.g. a checkpoint from before moments were persisted.
  bool load_optimizer_state(const nn::TensorMap& map);

  /// Checkpoints are self-describing: weights, batch-norm statistics and
  /// the architecture configuration are stored together, so load() can
  /// verify compatibility and load_file() can reconstruct the model.
  void save(const std::string& path);
  void load(const std::string& path);
  static Pix2Pix load_file(const std::string& path);

  /// Reads only the architecture configuration out of a checkpoint — used to
  /// construct a matching model (e.g. a CongestionForecaster) before load().
  static Pix2PixConfig peek_config(const std::string& path);

  /// Encodes/decodes the architecture-defining config fields (everything
  /// load_file needs; optimizer state and seeds are not persisted).
  static nn::Tensor encode_config(const Pix2PixConfig& config);
  static Pix2PixConfig decode_config(const nn::Tensor& encoded);

  /// Maps [0,1] image data to the tanh range [-1,1] and back.
  static nn::Tensor to_signed(const nn::Tensor& t01);
  static nn::Tensor to_unit(const nn::Tensor& signed_t);

 private:
  Pix2PixConfig config_;
  std::unique_ptr<UNetGenerator> generator_;
  std::unique_ptr<PatchDiscriminator> discriminator_;
  std::unique_ptr<nn::Adam> opt_g_;
  std::unique_ptr<nn::Adam> opt_d_;
  nn::BceWithLogitsLoss bce_;
  nn::L1Loss l1_;
};

}  // namespace paintplace::core
