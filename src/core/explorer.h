// Placement exploration (Sec. 5.4): rank candidate placements by predicted
// congestion, either over the whole floor plan or inside a region (Fig. 9's
// "upper / lower / right-hand side" objectives), without routing any of
// them.
#pragma once

#include <string>
#include <vector>

#include "core/forecaster.h"

namespace paintplace::core {

/// Fractional region of the image, half-open: x in [x0,x1), y in [y0,y1),
/// with 0..1 spanning the full canvas. y grows downward (image convention),
/// so the paper's "upper side" is y0=0, y1=0.5.
struct Region {
  double x0 = 0.0, y0 = 0.0, x1 = 1.0, y1 = 1.0;
  std::string name = "overall";

  bool contains(Index x, Index y, Index width, Index height) const;

  static Region overall() { return {0.0, 0.0, 1.0, 1.0, "overall"}; }
  static Region upper() { return {0.0, 0.0, 1.0, 0.5, "upper"}; }
  static Region lower() { return {0.0, 0.5, 1.0, 1.0, "lower"}; }
  static Region left() { return {0.0, 0.0, 0.5, 1.0, "left"}; }
  static Region right() { return {0.5, 0.0, 1.0, 1.0, "right"}; }
};

/// Mean decoded utilization of a heat-map tensor restricted to a region.
double region_congestion(const nn::Tensor& heatmap01, const Region& region);

enum class Objective : std::uint8_t { kMinimize, kMaximize };

struct ExplorationPick {
  Index sample_index = -1;       ///< position in the candidate vector
  double predicted_score = 0.0;  ///< region congestion of the predicted map
  double true_score = 0.0;       ///< region congestion of the ground truth
};

class PlacementExplorer {
 public:
  explicit PlacementExplorer(CongestionForecaster& forecaster) : forecaster_(&forecaster) {}

  /// Predicts every candidate once and caches the heat maps.
  void load_candidates(const std::vector<const data::Sample*>& candidates);

  /// Best candidate for an objective over a region (Fig. 9 queries).
  ExplorationPick pick(const Region& region, Objective objective) const;

  /// Candidates sorted by predicted region congestion (ascending).
  std::vector<ExplorationPick> ranking(const Region& region) const;

  Index num_candidates() const { return static_cast<Index>(predictions_.size()); }
  const nn::Tensor& prediction(Index i) const;

 private:
  CongestionForecaster* forecaster_;
  std::vector<const data::Sample*> candidates_;
  std::vector<nn::Tensor> predictions_;
};

}  // namespace paintplace::core
