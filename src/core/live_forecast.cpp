#include "core/live_forecast.h"

#include "img/image.h"

namespace paintplace::core {

LiveForecast::LiveForecast(CongestionForecaster& forecaster, const img::PixelGeometry& geom,
                           Index width, double lambda_connect)
    : forecaster_(&forecaster), geom_(&geom), width_(width), lambda_connect_(lambda_connect) {
  PP_CHECK(width >= 8);
}

void LiveForecast::on_snapshot(const place::Placement& placement, Index accepted_moves,
                               double temperature) {
  const nn::Tensor input = data::make_input(placement, *geom_, width_, lambda_connect_);
  const nn::Tensor heat = forecaster_->predict(input);

  LiveFrame frame;
  frame.accepted_moves = accepted_moves;
  frame.temperature = temperature;
  frame.predicted_congestion = forecaster_->congestion_score(heat);
  frame.placement_cost = placement.total_cost();
  frames_.push_back(frame);

  if (dump_dir_) {
    img::Image image = img::Image::from_tensor(heat);
    img::write_image(image, *dump_dir_ + "/frame_" + std::to_string(frames_.size() - 1) + ".ppm");
  }
}

}  // namespace paintplace::core
