#include "core/pix2pix.h"

#include <algorithm>

#include "common/timer.h"
#include "nn/serialize.h"
#include "nn/tensor_ops.h"

namespace paintplace::core {

namespace {

void check_training_pair(const Pix2PixConfig& config, const nn::Tensor& input01,
                         const nn::Tensor& truth01) {
  const GeneratorConfig& gen = config.generator;
  PP_CHECK_MSG(input01.rank() == 4 && input01.dim(0) >= 1 && input01.dim(1) == gen.in_channels &&
                   input01.dim(2) == gen.image_size && input01.dim(3) == gen.image_size,
               "Pix2Pix::train_step input " << input01.shape().str() << " does not match model (N,"
                                            << gen.in_channels << "," << gen.image_size << ","
                                            << gen.image_size << ")");
  PP_CHECK_MSG(truth01.rank() == 4 && truth01.dim(0) == input01.dim(0) &&
                   truth01.dim(1) == gen.out_channels && truth01.dim(2) == gen.image_size &&
                   truth01.dim(3) == gen.image_size,
               "Pix2Pix::train_step truth " << truth01.shape().str() << " does not match input "
                                            << input01.shape().str() << " and model (N,"
                                            << gen.out_channels << "," << gen.image_size << ","
                                            << gen.image_size << ")");
}

}  // namespace

Pix2Pix::Pix2Pix(const Pix2PixConfig& config) : config_(config) {
  GeneratorConfig gen_cfg = config.generator;
  gen_cfg.seed = config.seed;
  generator_ = std::make_unique<UNetGenerator>(gen_cfg);
  discriminator_ = std::make_unique<PatchDiscriminator>(config.discriminator_config());
  opt_g_ = std::make_unique<nn::Adam>(generator_->parameters(), config.adam);
  opt_d_ = std::make_unique<nn::Adam>(discriminator_->parameters(), config.adam);
}

nn::Tensor Pix2Pix::to_signed(const nn::Tensor& t01) {
  nn::Tensor t = t01;
  for (Index i = 0; i < t.numel(); ++i) t[i] = t[i] * 2.0f - 1.0f;
  return t;
}

nn::Tensor Pix2Pix::to_unit(const nn::Tensor& signed_t) {
  nn::Tensor t = signed_t;
  for (Index i = 0; i < t.numel(); ++i) t[i] = std::clamp((t[i] + 1.0f) * 0.5f, 0.0f, 1.0f);
  return t;
}

GanLosses Pix2Pix::train_step(const nn::Tensor& input01, const nn::Tensor& truth01,
                              StepTimings* timings) {
  check_training_pair(config_, input01, truth01);
  const nn::Tensor x = to_signed(input01);
  const nn::Tensor t = to_signed(truth01);

  generator_->set_training(true);
  discriminator_->set_training(true);

  Timer timer;
  // ---- Generator forward (one stochastic draw of z per step). ----
  const nn::Tensor g = generator_->forward(x);
  if (timings) timings->g_forward_s = timer.seconds();

  GanLosses losses;

  // ---- Discriminator step: real pair -> 1, fake pair -> 0. ----
  discriminator_->zero_grad();
  timer.reset();
  {
    const nn::Tensor real_logits = discriminator_->forward(nn::concat_channels(x, t));
    const float loss_real = bce_.forward(real_logits, 1.0f);
    // Halve each branch so D's total matches the conventional (real+fake)/2.
    nn::Tensor grad = bce_.backward();
    grad.mul_(0.5f);
    discriminator_->backward(grad);

    const nn::Tensor fake_logits = discriminator_->forward(nn::concat_channels(x, g));
    const float loss_fake = bce_.forward(fake_logits, 0.0f);
    grad = bce_.backward();
    grad.mul_(0.5f);
    discriminator_->backward(grad);

    losses.d_loss = 0.5 * (static_cast<double>(loss_real) + static_cast<double>(loss_fake));
    opt_d_->step();
  }
  if (timings) timings->d_step_s = timer.seconds();

  // ---- Generator step: fool the (updated) discriminator + L1. ----
  generator_->zero_grad();
  discriminator_->zero_grad();  // scratch; D is not stepped below
  timer.reset();
  {
    // Re-run D on the fake pair so its activation caches match the weights
    // used to compute the generator gradient.
    const nn::Tensor fake_logits = discriminator_->forward(nn::concat_channels(x, g));
    const float g_gan = bce_.forward(fake_logits, 1.0f);  // non-saturating form
    const nn::Tensor grad_concat = discriminator_->backward(bce_.backward());
    auto [grad_x_part, grad_g] = nn::split_channels(grad_concat, config_.generator.in_channels);
    (void)grad_x_part;  // condition x is an input, not a learnable path

    losses.g_gan = static_cast<double>(g_gan);
    const float l1 = l1_.forward(g, t);
    losses.g_l1 = static_cast<double>(l1);
    if (config_.use_l1) {
      grad_g.add_(l1_.backward(), config_.lambda_l1);
    }
    generator_->backward(grad_g);
    opt_g_->step();
  }
  if (timings) timings->g_step_s = timer.seconds();
  return losses;
}

GanLosses Pix2Pix::train_step_accumulated(const std::vector<const nn::Tensor*>& inputs01,
                                          const std::vector<const nn::Tensor*>& truths01) {
  const Index B = static_cast<Index>(inputs01.size());
  PP_CHECK_MSG(B >= 1 && inputs01.size() == truths01.size(),
               "train_step_accumulated needs matching, non-empty input/truth lists");
  PP_CHECK_MSG((B & (B - 1)) == 0,
               "train_step_accumulated batch size " << B << " must be a power of two "
                                                    << "(exact 1/N gradient scaling)");
  const float inv_b = 1.0f / static_cast<float>(B);

  generator_->set_training(true);
  discriminator_->set_training(true);

  std::vector<nn::Tensor> xs, ts, fakes;
  xs.reserve(static_cast<std::size_t>(B));
  ts.reserve(static_cast<std::size_t>(B));
  fakes.reserve(static_cast<std::size_t>(B));
  for (Index b = 0; b < B; ++b) {
    check_training_pair(config_, *inputs01[static_cast<std::size_t>(b)],
                        *truths01[static_cast<std::size_t>(b)]);
    PP_CHECK_MSG(inputs01[static_cast<std::size_t>(b)]->dim(0) == 1,
                 "train_step_accumulated samples must be single (1,C,H,W) tensors");
    xs.push_back(to_signed(*inputs01[static_cast<std::size_t>(b)]));
    ts.push_back(to_signed(*truths01[static_cast<std::size_t>(b)]));
    // One stochastic draw per sample for the D phase's fake pairs. (A batched
    // step draws the batch's noise field in one pass instead — see
    // docs/training.md for when the two updates coincide bit-for-bit.)
    fakes.push_back(generator_->forward(xs.back()));
  }

  GanLosses losses;

  // ---- Discriminator step, gradients averaged over the micro-batch. ----
  discriminator_->zero_grad();
  {
    double loss_real = 0.0, loss_fake = 0.0;
    for (Index b = 0; b < B; ++b) {
      const nn::Tensor real_logits = discriminator_->forward(
          nn::concat_channels(xs[static_cast<std::size_t>(b)], ts[static_cast<std::size_t>(b)]));
      loss_real += static_cast<double>(bce_.forward(real_logits, 1.0f));
      nn::Tensor grad = bce_.backward();
      grad.mul_(0.5f * inv_b);  // exact: both factors are powers of two
      discriminator_->backward(grad);
    }
    for (Index b = 0; b < B; ++b) {
      const nn::Tensor fake_logits = discriminator_->forward(nn::concat_channels(
          xs[static_cast<std::size_t>(b)], fakes[static_cast<std::size_t>(b)]));
      loss_fake += static_cast<double>(bce_.forward(fake_logits, 0.0f));
      nn::Tensor grad = bce_.backward();
      grad.mul_(0.5f * inv_b);
      discriminator_->backward(grad);
    }
    losses.d_loss = 0.5 * (loss_real + loss_fake) / static_cast<double>(B);
    opt_d_->step();
  }

  // ---- Generator step: per-sample forward/backward, one Adam update. ----
  generator_->zero_grad();
  discriminator_->zero_grad();  // scratch; D is not stepped below
  {
    for (Index b = 0; b < B; ++b) {
      // Re-run G so its layer caches (and D's, below) belong to this sample.
      const nn::Tensor g = generator_->forward(xs[static_cast<std::size_t>(b)]);
      const nn::Tensor fake_logits = discriminator_->forward(
          nn::concat_channels(xs[static_cast<std::size_t>(b)], g));
      losses.g_gan += static_cast<double>(bce_.forward(fake_logits, 1.0f));
      nn::Tensor grad = bce_.backward();
      grad.mul_(inv_b);
      const nn::Tensor grad_concat = discriminator_->backward(grad);
      auto [grad_x_part, grad_g] = nn::split_channels(grad_concat, config_.generator.in_channels);
      (void)grad_x_part;
      losses.g_l1 += static_cast<double>(l1_.forward(g, ts[static_cast<std::size_t>(b)]));
      if (config_.use_l1) {
        nn::Tensor l1_grad = l1_.backward();
        l1_grad.mul_(inv_b);
        grad_g.add_(l1_grad, config_.lambda_l1);
      }
      generator_->backward(grad_g);
    }
    losses.g_gan /= static_cast<double>(B);
    losses.g_l1 /= static_cast<double>(B);
    opt_g_->step();
  }
  return losses;
}

nn::Tensor Pix2Pix::predict(const nn::Tensor& input01) {
  const GeneratorConfig& gen = config_.generator;
  PP_CHECK_MSG(input01.rank() == 4, "Pix2Pix::predict expects an NCHW tensor (N," << gen.in_channels
                                        << "," << gen.image_size << "," << gen.image_size
                                        << "), got rank " << input01.rank());
  PP_CHECK_MSG(input01.dim(0) >= 1 && input01.dim(1) == gen.in_channels &&
                   input01.dim(2) == gen.image_size && input01.dim(3) == gen.image_size,
               "Pix2Pix::predict input " << input01.shape().str() << " does not match model (N,"
                                         << gen.in_channels << "," << gen.image_size << ","
                                         << gen.image_size << ")");
  generator_->set_training(false);  // eval batch-norm; dropout z stays live unless frozen
  const nn::Tensor g = generator_->forward(to_signed(input01));
  return to_unit(g);
}

void Pix2Pix::reset_optimizers(float lr) {
  nn::AdamConfig cfg = config_.adam;
  cfg.lr = lr;
  opt_g_ = std::make_unique<nn::Adam>(generator_->parameters(), cfg);
  opt_d_ = std::make_unique<nn::Adam>(discriminator_->parameters(), cfg);
}

void Pix2Pix::save_optimizer_state(nn::TensorMap& out) const {
  opt_g_->export_state(out, "opt_g/");
  opt_d_->export_state(out, "opt_d/");
}

bool Pix2Pix::load_optimizer_state(const nn::TensorMap& map) {
  if (!nn::Adam::has_state(map, "opt_g/") || !nn::Adam::has_state(map, "opt_d/")) return false;
  opt_g_->import_state(map, "opt_g/");
  opt_d_->import_state(map, "opt_d/");
  return true;
}

nn::Tensor Pix2Pix::encode_config(const Pix2PixConfig& config) {
  const GeneratorConfig& g = config.generator;
  return nn::Tensor(nn::Shape{12},
                    {static_cast<float>(g.in_channels), static_cast<float>(g.out_channels),
                     static_cast<float>(g.image_size), static_cast<float>(g.base_channels),
                     static_cast<float>(g.max_channels),
                     static_cast<float>(static_cast<int>(g.skips)),
                     g.dropout ? 1.0f : 0.0f, g.dropout_p,
                     static_cast<float>(config.disc_base_channels), config.lambda_l1,
                     config.use_l1 ? 1.0f : 0.0f,
                     static_cast<float>(static_cast<int>(g.norm))});
}

Pix2PixConfig Pix2Pix::decode_config(const nn::Tensor& encoded) {
  PP_CHECK_MSG(encoded.shape() == nn::Shape{12}, "malformed checkpoint config record");
  Pix2PixConfig cfg;
  cfg.generator.in_channels = static_cast<Index>(encoded[0]);
  cfg.generator.out_channels = static_cast<Index>(encoded[1]);
  cfg.generator.image_size = static_cast<Index>(encoded[2]);
  cfg.generator.base_channels = static_cast<Index>(encoded[3]);
  cfg.generator.max_channels = static_cast<Index>(encoded[4]);
  cfg.generator.skips = static_cast<SkipMode>(static_cast<int>(encoded[5]));
  cfg.generator.dropout = encoded[6] != 0.0f;
  cfg.generator.dropout_p = encoded[7];
  cfg.disc_base_channels = static_cast<Index>(encoded[8]);
  cfg.lambda_l1 = encoded[9];
  cfg.use_l1 = encoded[10] != 0.0f;
  cfg.generator.norm = static_cast<NormKind>(static_cast<int>(encoded[11]));
  cfg.generator.validate();
  return cfg;
}

namespace {
constexpr const char* kConfigKey = "__pix2pix_config__";
}  // namespace

void Pix2Pix::save(const std::string& path) {
  nn::TensorMap map = nn::snapshot_parameters(*generator_);
  nn::TensorMap disc = nn::snapshot_parameters(*discriminator_);
  map.insert(disc.begin(), disc.end());
  map.emplace(kConfigKey, encode_config(config_));
  nn::save_tensors_file(map, path);
}

void Pix2Pix::load(const std::string& path) {
  const nn::TensorMap map = nn::load_tensors_file(path);
  if (const auto it = map.find(kConfigKey); it != map.end()) {
    const Pix2PixConfig stored = decode_config(it->second);
    PP_CHECK_MSG(encode_config(stored).max_abs_diff(encode_config(config_)) == 0.0f,
                 "checkpoint " << path << " was trained with a different architecture "
                               << "configuration; use Pix2Pix::load_file to reconstruct it");
  }
  nn::restore_parameters(*generator_, map);
  nn::restore_parameters(*discriminator_, map);
}

Pix2PixConfig Pix2Pix::peek_config(const std::string& path) {
  const nn::TensorMap map = nn::load_tensors_file(path);
  const auto it = map.find(kConfigKey);
  PP_CHECK_MSG(it != map.end(), "checkpoint " << path << " has no config record");
  return decode_config(it->second);
}

Pix2Pix Pix2Pix::load_file(const std::string& path) {
  const nn::TensorMap map = nn::load_tensors_file(path);
  const auto it = map.find(kConfigKey);
  PP_CHECK_MSG(it != map.end(), "checkpoint " << path << " has no config record");
  Pix2Pix model(decode_config(it->second));
  nn::restore_parameters(*model.generator_, map);
  nn::restore_parameters(*model.discriminator_, map);
  return model;
}

}  // namespace paintplace::core
