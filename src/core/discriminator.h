// Patch discriminator D(x, g/t) — right side of Figure 5.
//
// Six-layer convolutional classifier over the stacked (input, candidate)
// images: C64-C128-C256 stride 2, C512 stride 1, C1 stride 1, producing a
// patch logit map (30x30 for 256-inputs, matching Fig. 5); the sigmoid is
// folded into the BCE-with-logits loss.
#pragma once

#include "core/unet.h"
#include "nn/activations.h"
#include "nn/batchnorm2d.h"
#include "nn/conv2d.h"
#include "nn/module.h"

namespace paintplace::core {

using paintplace::Index;

struct DiscriminatorConfig {
  Index in_channels = 7;   ///< generator input channels + image channels (4 + 3)
  Index base_channels = 64;
  Index image_size = 256;  ///< input resolution; controls downsampling depth
  NormKind norm = NormKind::kBatch;
  std::uint64_t seed = 2;

  /// Stride-2 stages: 3 for the paper's 256-inputs (as in Fig. 5), fewer
  /// for small images so the two stride-1 k4 convs still have >= 2x2 left.
  Index num_stride2_layers() const;
};

class PatchDiscriminator : public nn::Module {
 public:
  explicit PatchDiscriminator(const DiscriminatorConfig& config);

  const DiscriminatorConfig& config() const { return config_; }

  /// Input: (1, in_channels, w, w) — concat of condition x and image.
  /// Output: patch logits (1, 1, p, p).
  nn::Tensor forward(const nn::Tensor& input) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  void collect_parameters(std::vector<nn::Parameter*>& out) override;
  void collect_buffers(std::vector<nn::NamedBuffer>& out) override;
  void set_training(bool training) override;

 private:
  DiscriminatorConfig config_;
  nn::Sequential layers_;
};

}  // namespace paintplace::core
