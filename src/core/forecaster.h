// CongestionForecaster — the library's main public API.
//
// Wraps the cGAN with the paper's training strategies and evaluation:
//   * train()      — strategy 1, leave-one-design-out training set
//   * fine_tune()  — strategy 2, transfer-learning update on ~10 pairs of
//                    the test design
//   * predict()    — heat map from placement-stage features only
//   * evaluate()   — per-pixel accuracy + Top-10 retrieval (Table 2)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/pix2pix.h"
#include "data/metrics.h"
#include "data/sample.h"

namespace paintplace::core {

struct TrainConfig {
  Index epochs = 3;             ///< paper: 250
  bool shuffle = true;
  std::uint64_t seed = 7;
  /// Optional observer, e.g. for live logging; called after every epoch
  /// with the epoch index and that epoch's average losses.
  std::function<void(Index, const GanLosses&)> on_epoch;
};

/// Loss trajectory, one entry per epoch (drives Figure 8).
using TrainHistory = std::vector<GanLosses>;

struct EvalResult {
  double mean_pixel_accuracy = 0.0;
  std::vector<double> per_sample_accuracy;
  std::vector<double> predicted_scores;  ///< decoded total utilization per sample
  std::vector<double> true_scores;       ///< meta.true_total_utilization
  double top10 = 0.0;                    ///< Table 2 "Top10" (k = min(10, n))
  double rank_correlation = 0.0;         ///< Spearman between score vectors
};

class CongestionForecaster {
 public:
  explicit CongestionForecaster(const Pix2PixConfig& config);

  Pix2Pix& model() { return model_; }
  const Pix2PixConfig& config() const { return model_.config(); }

  TrainHistory train(const std::vector<const data::Sample*>& samples, const TrainConfig& config);

  /// Strategy 2: continue training on a small set from the test design with
  /// a reduced learning rate (transfer learning).
  TrainHistory fine_tune(const std::vector<const data::Sample*>& samples,
                         const TrainConfig& config, float lr_scale = 0.5f);

  /// Predicted heat-map tensor (1,3,w,w) in [0,1] from a (1,C,w,w) input.
  nn::Tensor predict(const nn::Tensor& input01);

  /// Batched inference: (N,C,w,w) in, (N,3,w,w) out — one forward pass for
  /// the whole batch. With deterministic inference enabled, sample i of the
  /// result is bit-identical to predict() on sample i alone.
  nn::Tensor predict_batch(const nn::Tensor& batch01);

  /// Freezes (true) or re-enables (false) the inference noise z. Frozen
  /// inference is a pure function of the input — required by the serving
  /// layer's result cache and for batched/per-sample equivalence.
  void set_deterministic_inference(bool deterministic);
  bool deterministic_inference() const { return deterministic_; }

  /// Congestion score of a predicted heat map: mean decoded utilization
  /// over all pixels via the colormap inverse. Monotone proxy for the
  /// router's total utilization, used for ranking placements.
  double congestion_score(const nn::Tensor& heatmap01) const;

  /// Per-sample congestion scores of an (N,3,w,w) heat-map batch.
  std::vector<double> congestion_scores(const nn::Tensor& heatmaps01) const;

  /// The shape check predict/predict_batch run, exposed so callers that
  /// queue work (the serving layer) can fail fast in the submitting thread
  /// with the same message. Throws CheckError on mismatch.
  void validate_input(const nn::Tensor& input01, bool batched) const;

  EvalResult evaluate(const std::vector<const data::Sample*>& test_samples, Index top_k = 10);

  void save(const std::string& path) { model_.save(path); }
  void load(const std::string& path) { model_.load(path); }

 private:
  TrainHistory run_epochs(const std::vector<const data::Sample*>& samples,
                          const TrainConfig& config);
  double score_sample(const nn::Tensor& heatmaps01, Index n) const;

  Pix2Pix model_;
  bool deterministic_ = false;
};

}  // namespace paintplace::core
