// Island-style FPGA architecture model (the paper's fixed FPGA target,
// Figure 2a): an IO ring around interior columns of CLB spots, with
// dedicated memory and multiplier columns, and routing channels between all
// tiles. Mirrors the VPR architecture the paper renders.
#pragma once

#include <string>
#include <vector>

#include "common/check.h"

namespace paintplace::fpga {

using paintplace::Index;

/// What a grid tile can hold.
enum class TileType : std::uint8_t {
  kIo,    ///< perimeter pad; holds up to `io_ports_per_pad` input/output ports
  kClb,   ///< one cluster-based logic block
  kMem,   ///< memory block column (lightyellow in Table 1)
  kMult,  ///< multiplier block column (pink in Table 1)
};

const char* tile_type_name(TileType t);

/// Grid coordinate. `sub` selects a port within an IO pad (0 for others).
struct GridLoc {
  Index x = -1;
  Index y = -1;
  Index sub = 0;

  bool operator==(const GridLoc&) const = default;
  bool valid() const { return x >= 0 && y >= 0 && sub >= 0; }
};

struct ArchParams {
  Index io_ports_per_pad = 8;   ///< ports per IO pad (paper Sec. 3)
  Index mem_column_start = 3;   ///< first interior column index holding memory
  Index mem_column_period = 8;  ///< repeat distance of memory columns
  Index mult_column_start = 7;
  Index mult_column_period = 8;
  Index channel_width = 34;     ///< routing tracks per channel (Fig. 2 caption)
  double target_utilization = 0.6;  ///< CLB fill ratio targeted by auto-sizing
};

/// Counts used by auto-sizing.
struct BlockDemand {
  Index clbs = 0;
  Index ios = 0;
  Index mems = 0;
  Index mults = 0;
};

/// Immutable architecture/floorplan: tile types over a (width x height)
/// grid. Column 0, row 0, last column and last row are the IO ring; the
/// interior is CLB columns with periodic MEM/MULT columns.
class Arch {
 public:
  /// interior_cols/interior_rows: the logic area between the IO ring.
  Arch(Index interior_cols, Index interior_rows, ArchParams params = {});

  /// Smallest square-ish arch whose capacities fit `demand` at the params'
  /// target utilization.
  static Arch auto_sized(const BlockDemand& demand, ArchParams params = {});

  Index width() const { return width_; }    ///< tiles across, including IO ring
  Index height() const { return height_; }  ///< tiles down, including IO ring
  const ArchParams& params() const { return params_; }

  TileType tile_type(Index x, Index y) const {
    PP_CHECK_MSG(in_grid(x, y), "tile (" << x << "," << y << ") outside " << width_ << "x"
                                         << height_);
    return tiles_[static_cast<std::size_t>(y * width_ + x)];
  }
  bool in_grid(Index x, Index y) const { return x >= 0 && x < width_ && y >= 0 && y < height_; }
  bool is_corner(Index x, Index y) const {
    return (x == 0 || x == width_ - 1) && (y == 0 || y == height_ - 1);
  }

  /// Placement slots (tile + sub-tile) able to hold a block of the given
  /// tile type, in deterministic scan order. Corners hold nothing.
  const std::vector<GridLoc>& slots(TileType type) const;

  /// Total capacity in block units for the given type.
  Index capacity(TileType type) const { return static_cast<Index>(slots(type).size()); }

  std::string summary() const;

 private:
  Index width_, height_;
  ArchParams params_;
  std::vector<TileType> tiles_;
  std::vector<GridLoc> io_slots_, clb_slots_, mem_slots_, mult_slots_;
};

}  // namespace paintplace::fpga
