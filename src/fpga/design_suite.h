// The eight benchmark designs of Table 2, reproduced as DesignSpecs for the
// synthetic generator. LUT/FF/net counts are the paper's exact numbers; IO,
// memory and multiplier counts are not reported by the paper and follow VTR
// conventions (IO ~ a few dozen to a couple hundred pins; a handful of
// hard blocks for the DSP-flavoured designs).
#pragma once

#include <vector>

#include "fpga/netgen.h"

namespace paintplace::fpga {

/// Specs for diffeq1, diffeq2, raygentop, SHA, OR1200, ode, dcsg, bfly —
/// in the row order of Table 2.
const std::vector<DesignSpec>& table2_designs();

/// Lookup by name; throws CheckError for unknown names.
const DesignSpec& design_by_name(const std::string& name);

}  // namespace paintplace::fpga
