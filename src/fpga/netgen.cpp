#include "fpga/netgen.h"

#include <algorithm>
#include <cmath>

namespace paintplace::fpga {
namespace {

/// Picks a sink near `driver_pos` (in block-id space) with the configured
/// locality, else uniformly. Block ids act as a 1-D proxy for logical
/// proximity: the generator allocates related logic contiguously, the same
/// way clustered synthesis output orders BLIF primitives.
///
/// `pin_load` (optional) enables power-of-two-choices balancing: draw two
/// candidates, keep the one with fewer pins so far. Blocks in real packed
/// netlists have bounded pin counts; without balancing a handful of blocks
/// can accumulate more terminals than their four adjacent routing channels
/// can physically carry.
Index pick_sink(Index driver_pos, Index universe, const NetgenParams& params, Rng& rng,
                const std::vector<Index>* pin_load = nullptr) {
  PP_CHECK(universe >= 2);
  auto draw = [&]() -> Index {
    if (rng.chance(params.locality)) {
      const Index lo = std::max<Index>(0, driver_pos - params.locality_window);
      const Index hi = std::min<Index>(universe - 1, driver_pos + params.locality_window);
      return rng.uniform_int(lo, hi);
    }
    return rng.uniform_int(0, universe - 1);
  };
  for (int attempt = 0; attempt < 8; ++attempt) {
    Index candidate = draw();
    if (params.balance_pins && pin_load != nullptr) {
      const Index alternative = draw();
      if (alternative != driver_pos &&
          (candidate == driver_pos ||
           (*pin_load)[static_cast<std::size_t>(alternative)] <
               (*pin_load)[static_cast<std::size_t>(candidate)])) {
        candidate = alternative;
      }
    }
    if (candidate != driver_pos) return candidate;
  }
  return (driver_pos + 1) % universe;
}

}  // namespace

DesignSpec scale_spec(const DesignSpec& spec, double factor) {
  PP_CHECK(factor > 0.0);
  auto scale = [factor](Index v) -> Index {
    if (v == 0) return 0;
    return std::max<Index>(1, static_cast<Index>(std::llround(static_cast<double>(v) * factor)));
  };
  DesignSpec s = spec;
  s.num_luts = scale(spec.num_luts);
  s.num_ffs = scale(spec.num_ffs);
  s.num_nets = std::max<Index>(2, scale(spec.num_nets));
  s.num_inputs = scale(spec.num_inputs);
  s.num_outputs = scale(spec.num_outputs);
  s.num_mems = scale(spec.num_mems);
  s.num_mults = scale(spec.num_mults);
  return s;
}

Netlist generate_flat(const DesignSpec& spec, const NetgenParams& params, std::uint64_t seed) {
  PP_CHECK_MSG(spec.num_luts >= 1, "flat design needs LUTs");
  PP_CHECK_MSG(spec.num_inputs >= 1 && spec.num_outputs >= 1, "design needs IO");
  Rng rng(seed);
  Netlist nl(spec.name);

  std::vector<BlockId> inputs, outputs, logic;  // logic = LUT/FF/MEM/MULT, net drivers
  for (Index i = 0; i < spec.num_inputs; ++i) {
    inputs.push_back(nl.add_block(BlockKind::kInputPad, "in" + std::to_string(i)));
  }
  for (Index i = 0; i < spec.num_outputs; ++i) {
    outputs.push_back(nl.add_block(BlockKind::kOutputPad, "out" + std::to_string(i)));
  }
  // Interleave FFs among LUTs so that id-locality couples them, mimicking
  // LUT->FF pairs that the packer later fuses into BLEs.
  const Index total_prims = spec.num_luts + spec.num_ffs;
  Index luts_made = 0, ffs_made = 0;
  for (Index i = 0; i < total_prims; ++i) {
    const bool make_ff =
        ffs_made < spec.num_ffs &&
        (luts_made >= spec.num_luts ||
         rng.chance(static_cast<double>(spec.num_ffs - ffs_made) /
                    static_cast<double>(total_prims - i)));
    if (make_ff) {
      logic.push_back(nl.add_block(BlockKind::kFf, "ff" + std::to_string(ffs_made++)));
    } else {
      logic.push_back(nl.add_block(BlockKind::kLut, "lut" + std::to_string(luts_made++)));
    }
  }
  for (Index i = 0; i < spec.num_mems; ++i) {
    logic.push_back(nl.add_block(BlockKind::kMem, "mem" + std::to_string(i)));
  }
  for (Index i = 0; i < spec.num_mults; ++i) {
    logic.push_back(nl.add_block(BlockKind::kMult, "mult" + std::to_string(i)));
  }

  const Index n_logic = static_cast<Index>(logic.size());
  // Every logic block and every input pad drives one net.
  std::vector<NetId> nets;
  std::vector<Index> pin_load(static_cast<std::size_t>(n_logic), 0);
  auto make_net = [&](BlockId driver, Index driver_pos, const std::string& base) {
    const Index fanout = rng.geometric_int(1, params.max_fanout, params.fanout_decay);
    std::vector<BlockId> sinks;
    sinks.reserve(static_cast<std::size_t>(fanout));
    for (Index f = 0; f < fanout; ++f) {
      const Index pos = pick_sink(driver_pos, n_logic, params, rng, &pin_load);
      sinks.push_back(logic[static_cast<std::size_t>(pos)]);
      pin_load[static_cast<std::size_t>(pos)] += 1;
    }
    sinks.erase(std::remove(sinks.begin(), sinks.end(), driver), sinks.end());
    if (sinks.empty()) {
      sinks.push_back(logic[static_cast<std::size_t>(pick_sink(driver_pos, n_logic, params, rng))]);
      if (sinks.back() == driver) {
        sinks.back() = logic[static_cast<std::size_t>((driver_pos + 1) % n_logic)];
      }
    }
    nets.push_back(nl.add_net(base, driver, std::move(sinks)));
  };

  for (Index i = 0; i < static_cast<Index>(inputs.size()); ++i) {
    // Input pads fan into logic near a random anchor.
    make_net(inputs[static_cast<std::size_t>(i)], rng.uniform_int(0, n_logic - 1),
             "n_in" + std::to_string(i));
  }
  for (Index i = 0; i < n_logic; ++i) {
    make_net(logic[static_cast<std::size_t>(i)], i, "n" + std::to_string(i));
  }
  // Output pads sink the nets of the last few logic drivers.
  for (Index i = 0; i < static_cast<Index>(outputs.size()); ++i) {
    const Index src = rng.uniform_int(0, n_logic - 1);
    const NetId net_id = nl.nets_of(logic[static_cast<std::size_t>(src)]).front();
    // Rebuild is avoided: outputs get dedicated 2-pin nets from their source.
    (void)net_id;
    nl.add_net("n_out" + std::to_string(i), logic[static_cast<std::size_t>(src)],
               {outputs[static_cast<std::size_t>(i)]});
  }

  nl.validate();
  return nl;
}

Netlist generate_packed(const DesignSpec& spec, const NetgenParams& params, std::uint64_t seed) {
  PP_CHECK_MSG(spec.num_luts >= 1, "design needs LUTs");
  PP_CHECK_MSG(spec.num_inputs >= 1 && spec.num_outputs >= 1, "design needs IO");
  PP_CHECK(params.clb_capacity >= 1);
  Rng rng(seed);
  Netlist nl(spec.name);

  const Index num_clbs = std::max<Index>(
      1, (std::max(spec.num_luts, spec.num_ffs) + params.clb_capacity - 1) / params.clb_capacity);

  // Logic blocks (CLB/MEM/MULT) can drive and sink many nets; IO follows
  // the physical pad model — an input pad drives exactly one net, an output
  // pad sinks exactly one net. Without that constraint a pad tile would
  // accumulate more terminal pins than its adjacent channels can carry and
  // the fabric would become structurally unroutable.
  std::vector<BlockId> logic;  // CLB/MEM/MULT: ids equal positions
  Index luts_left = spec.num_luts, ffs_left = spec.num_ffs;
  for (Index i = 0; i < num_clbs; ++i) {
    const Index luts_here = std::min(luts_left, params.clb_capacity);
    const Index ffs_here = std::min(ffs_left, params.clb_capacity);
    luts_left -= luts_here;
    ffs_left -= ffs_here;
    logic.push_back(
        nl.add_block(BlockKind::kClb, "clb" + std::to_string(i), luts_here, ffs_here));
  }
  for (Index i = 0; i < spec.num_mems; ++i) {
    logic.push_back(nl.add_block(BlockKind::kMem, "mem" + std::to_string(i)));
  }
  for (Index i = 0; i < spec.num_mults; ++i) {
    logic.push_back(nl.add_block(BlockKind::kMult, "mult" + std::to_string(i)));
  }
  std::vector<BlockId> inputs, outputs;
  for (Index i = 0; i < spec.num_inputs; ++i) {
    inputs.push_back(nl.add_block(BlockKind::kInputPad, "in" + std::to_string(i)));
  }
  for (Index i = 0; i < spec.num_outputs; ++i) {
    outputs.push_back(nl.add_block(BlockKind::kOutputPad, "out" + std::to_string(i)));
  }

  const Index n_logic = static_cast<Index>(logic.size());
  PP_CHECK_MSG(n_logic >= 2, "need at least two logic blocks");

  Index nets_made = 0;
  std::vector<Index> pin_load(static_cast<std::size_t>(n_logic), 0);
  auto logic_sinks = [&](Index anchor, BlockId exclude, Index min_count) {
    const Index fanout =
        std::max(min_count, rng.geometric_int(1, params.max_fanout, params.fanout_decay));
    std::vector<BlockId> sinks;
    for (Index f = 0; f < fanout; ++f) {
      const Index pos = pick_sink(anchor, n_logic, params, rng, &pin_load);
      const BlockId cand = logic[static_cast<std::size_t>(pos)];
      if (cand != exclude) {
        sinks.push_back(cand);
        pin_load[static_cast<std::size_t>(pos)] += 1;
      }
    }
    while (sinks.empty()) {
      Index pos = pick_sink(anchor, n_logic, params, rng, &pin_load);
      if (logic[static_cast<std::size_t>(pos)] == exclude) pos = (pos + 1) % n_logic;
      sinks.push_back(logic[static_cast<std::size_t>(pos)]);
      pin_load[static_cast<std::size_t>(pos)] += 1;
    }
    return sinks;
  };

  // Input pads: one net each, fanning into logic near a random anchor.
  for (BlockId pad : inputs) {
    nl.add_net("net" + std::to_string(nets_made++), pad,
               logic_sinks(rng.uniform_int(0, n_logic - 1), -1, 1));
  }
  // Output pads: one net each — a logic driver whose sink set contains the
  // pad (and often continues into logic, as output nets do in practice).
  for (BlockId pad : outputs) {
    const Index driver_pos = rng.uniform_int(0, n_logic - 1);
    const BlockId driver = logic[static_cast<std::size_t>(driver_pos)];
    pin_load[static_cast<std::size_t>(driver_pos)] += 1;
    std::vector<BlockId> sinks{pad};
    if (rng.chance(0.5)) {
      for (BlockId s : logic_sinks(driver_pos, driver, 1)) sinks.push_back(s);
    }
    nl.add_net("net" + std::to_string(nets_made++), driver, std::move(sinks));
  }
  // Remaining nets: logic-to-logic with id-space locality.
  while (nets_made < spec.num_nets) {
    const Index driver_pos = rng.uniform_int(0, n_logic - 1);
    const BlockId driver = logic[static_cast<std::size_t>(driver_pos)];
    pin_load[static_cast<std::size_t>(driver_pos)] += 1;
    nl.add_net("net" + std::to_string(nets_made++), driver, logic_sinks(driver_pos, driver, 1));
  }

  // Mop up logic blocks the random fill missed (possible when the net
  // target is small): one extra 2-pin net each, beyond the target rather
  // than violating connectivity.
  for (BlockId b : logic) {
    if (!nl.nets_of(b).empty()) continue;
    Index pos = rng.uniform_int(0, n_logic - 1);
    if (logic[static_cast<std::size_t>(pos)] == b) pos = (pos + 1) % n_logic;
    nl.add_net("fix" + std::to_string(b), b, {logic[static_cast<std::size_t>(pos)]});
  }

  nl.validate();
  PP_CHECK(nl.is_packed());
  return nl;
}

}  // namespace paintplace::fpga
