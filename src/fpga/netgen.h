// Synthetic netlist generation.
//
// The paper's eight benchmark designs are VTR circuits we cannot ship, so
// the suite is reproduced with a statistical generator (see DESIGN.md,
// "Substitutions"). Two entry points:
//   * generate_flat   — LUT/FF/IO primitive netlist with Rent's-rule
//     locality and a geometric fanout distribution; feed through pack() for
//     the full Fig.-1 flow.
//   * generate_packed — CLB-level netlist hitting an exact net count, used
//     to mirror the Table 2 statistics for dataset generation.
#pragma once

#include "common/rng.h"
#include "fpga/netlist.h"

namespace paintplace::fpga {

struct DesignSpec {
  std::string name;
  Index num_luts = 0;
  Index num_ffs = 0;
  Index num_nets = 0;     ///< target hyperedge count (packed generator only)
  Index num_inputs = 0;
  Index num_outputs = 0;
  Index num_mems = 0;
  Index num_mults = 0;
};

struct NetgenParams {
  Index clb_capacity = 10;      ///< BLEs per CLB (VTR-like)
  double locality = 0.75;       ///< probability a sink is near its driver
  Index locality_window = 24;   ///< "near" = within this many block ids
  double fanout_decay = 0.55;   ///< geometric fanout: P(extra sink) per step
  Index max_fanout = 48;
  /// Balance terminal pins across blocks (power-of-two-choices): real packed
  /// blocks have bounded pin counts, so sinks must not pile onto a few
  /// blocks — unbalanced netlists create unroutable pin hotspots.
  bool balance_pins = true;
};

/// Flat primitive netlist: every LUT/FF drives exactly one net; input pads
/// drive nets; output pads sink nets. Net count is emergent.
Netlist generate_flat(const DesignSpec& spec, const NetgenParams& params, std::uint64_t seed);

/// Packed CLB-level netlist with exactly spec.num_nets nets over
/// ceil(max(luts, ffs)/clb_capacity) CLBs plus IO/MEM/MULT blocks.
Netlist generate_packed(const DesignSpec& spec, const NetgenParams& params, std::uint64_t seed);

/// Scales every count of `spec` by `factor` (>= 0), keeping at least one
/// block of each nonzero category and at least two nets. Used to run the
/// Table 2 suite at CPU-friendly sizes.
DesignSpec scale_spec(const DesignSpec& spec, double factor);

}  // namespace paintplace::fpga
