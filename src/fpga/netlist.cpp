#include "fpga/netlist.h"

#include <algorithm>

namespace paintplace::fpga {

const char* block_kind_name(BlockKind k) {
  switch (k) {
    case BlockKind::kLut: return "LUT";
    case BlockKind::kFf: return "FF";
    case BlockKind::kInputPad: return "IPAD";
    case BlockKind::kOutputPad: return "OPAD";
    case BlockKind::kMem: return "MEM";
    case BlockKind::kMult: return "MULT";
    case BlockKind::kClb: return "CLB";
  }
  return "?";
}

TileType tile_type_for(BlockKind kind) {
  switch (kind) {
    case BlockKind::kInputPad:
    case BlockKind::kOutputPad: return TileType::kIo;
    case BlockKind::kMem: return TileType::kMem;
    case BlockKind::kMult: return TileType::kMult;
    case BlockKind::kClb: return TileType::kClb;
    case BlockKind::kLut:
    case BlockKind::kFf: break;
  }
  PP_CHECK_MSG(false, "block kind " << block_kind_name(kind) << " is not placeable");
  return TileType::kClb;  // unreachable
}

BlockId Netlist::add_block(BlockKind kind, std::string block_name, Index num_luts, Index num_ffs) {
  const BlockId id = num_blocks();
  blocks_.push_back(Block{id, kind, std::move(block_name), num_luts, num_ffs});
  nets_of_block_.emplace_back();
  return id;
}

NetId Netlist::add_net(std::string net_name, BlockId driver, std::vector<BlockId> sinks) {
  PP_CHECK_MSG(driver >= 0 && driver < num_blocks(), "net driver " << driver << " out of range");
  std::sort(sinks.begin(), sinks.end());
  sinks.erase(std::unique(sinks.begin(), sinks.end()), sinks.end());
  sinks.erase(std::remove(sinks.begin(), sinks.end(), driver), sinks.end());
  PP_CHECK_MSG(!sinks.empty(), "net " << net_name << " has no sinks besides its driver");
  for (BlockId s : sinks) {
    PP_CHECK_MSG(s >= 0 && s < num_blocks(), "net sink " << s << " out of range");
  }
  const NetId id = num_nets();
  nets_.push_back(Net{id, std::move(net_name), driver, std::move(sinks)});
  nets_of_block_[static_cast<std::size_t>(driver)].push_back(id);
  for (BlockId s : nets_.back().sinks) {
    nets_of_block_[static_cast<std::size_t>(s)].push_back(id);
  }
  return id;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.num_blocks = num_blocks();
  s.num_nets = num_nets();
  for (const Block& b : blocks_) {
    switch (b.kind) {
      case BlockKind::kLut: s.num_luts += 1; break;
      case BlockKind::kFf: s.num_ffs += 1; break;
      case BlockKind::kInputPad: s.num_inputs += 1; break;
      case BlockKind::kOutputPad: s.num_outputs += 1; break;
      case BlockKind::kMem: s.num_mems += 1; break;
      case BlockKind::kMult: s.num_mults += 1; break;
      case BlockKind::kClb:
        s.num_clbs += 1;
        s.num_luts += b.num_luts;
        s.num_ffs += b.num_ffs;
        break;
    }
  }
  return s;
}

void Netlist::validate() const {
  for (const Block& b : blocks_) {
    PP_CHECK_MSG(!nets_of(b.id).empty(), "block " << b.name << " is disconnected");
  }
  for (const Net& n : nets_) {
    PP_CHECK(n.driver >= 0 && n.driver < num_blocks());
    PP_CHECK_MSG(!n.sinks.empty(), "net " << n.name << " has no sinks");
    for (BlockId s : n.sinks) {
      PP_CHECK(s >= 0 && s < num_blocks());
      PP_CHECK_MSG(s != n.driver, "net " << n.name << " lists its driver as sink");
    }
  }
}

bool Netlist::is_packed() const {
  return std::none_of(blocks_.begin(), blocks_.end(), [](const Block& b) {
    return b.kind == BlockKind::kLut || b.kind == BlockKind::kFf;
  });
}

}  // namespace paintplace::fpga
