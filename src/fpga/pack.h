// Greedy connectivity-driven packing (the "Packing" step of Fig. 1).
//
// VPack-style two-phase clustering: fuse LUT->FF pairs into BLEs, then grow
// CLBs by repeatedly absorbing the unclustered BLE with the highest
// attraction (shared-net count) to the open cluster.
#pragma once

#include "fpga/netlist.h"

namespace paintplace::fpga {

struct PackParams {
  Index clb_capacity = 10;  ///< BLEs per CLB
};

struct PackResult {
  Netlist packed;
  /// packed block id for every flat block id (LUT/FF map to their CLB).
  std::vector<BlockId> flat_to_packed;
  Index num_bles = 0;
};

/// Packs a flat LUT/FF/IO/MEM/MULT netlist into a CLB-level netlist.
/// Nets internal to one CLB are absorbed (not emitted).
PackResult pack(const Netlist& flat, const PackParams& params);

}  // namespace paintplace::fpga
