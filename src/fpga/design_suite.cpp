#include "fpga/design_suite.h"

namespace paintplace::fpga {

const std::vector<DesignSpec>& table2_designs() {
  // name, LUTs, FFs, nets (Table 2); inputs, outputs, mems, mults (VTR-like).
  static const std::vector<DesignSpec> kDesigns = {
      {"diffeq1", 563, 193, 2059, 162, 96, 0, 5},
      {"diffeq2", 419, 96, 1560, 66, 96, 0, 5},
      {"raygentop", 1920, 1047, 5023, 214, 305, 1, 18},
      {"SHA", 2501, 911, 10910, 38, 36, 0, 0},
      {"OR1200", 2823, 670, 12336, 385, 394, 2, 1},
      {"ode", 5488, 1316, 20981, 247, 96, 8, 5},
      {"dcsg", 9088, 1618, 36912, 132, 64, 0, 16},
      {"bfly", 9503, 1748, 38582, 130, 64, 0, 16},
  };
  return kDesigns;
}

const DesignSpec& design_by_name(const std::string& name) {
  for (const DesignSpec& d : table2_designs()) {
    if (d.name == name) return d;
  }
  PP_CHECK_MSG(false, "unknown design " << name);
  return table2_designs().front();  // unreachable
}

}  // namespace paintplace::fpga
