#include "fpga/netlist_io.h"

#include <fstream>
#include <map>
#include <optional>
#include <sstream>

namespace paintplace::fpga {
namespace {

std::optional<BlockKind> kind_from_name(const std::string& name) {
  static const std::map<std::string, BlockKind> kKinds = {
      {"LUT", BlockKind::kLut},      {"FF", BlockKind::kFf},
      {"IPAD", BlockKind::kInputPad}, {"OPAD", BlockKind::kOutputPad},
      {"MEM", BlockKind::kMem},      {"MULT", BlockKind::kMult},
      {"CLB", BlockKind::kClb},
  };
  const auto it = kKinds.find(name);
  if (it == kKinds.end()) return std::nullopt;
  return it->second;
}

}  // namespace

void write_netlist(const Netlist& netlist, std::ostream& out) {
  out << "# paintplace netlist v1\n";
  out << "design " << netlist.name() << "\n";
  for (const Block& b : netlist.blocks()) {
    out << "block " << b.name << " " << block_kind_name(b.kind);
    if (b.kind == BlockKind::kClb) out << " " << b.num_luts << " " << b.num_ffs;
    out << "\n";
  }
  for (const Net& n : netlist.nets()) {
    out << "net " << n.name << " " << netlist.block(n.driver).name;
    for (BlockId s : n.sinks) out << " " << netlist.block(s).name;
    out << "\n";
  }
  PP_CHECK_MSG(out.good(), "netlist write failed");
}

Netlist read_netlist(std::istream& in) {
  std::optional<Netlist> netlist;
  std::map<std::string, BlockId> blocks_by_name;
  std::string line;
  Index line_no = 0;
  while (std::getline(in, line)) {
    line_no += 1;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string keyword;
    tokens >> keyword;
    if (keyword == "design") {
      std::string name;
      tokens >> name;
      PP_CHECK_MSG(!name.empty(), "line " << line_no << ": design needs a name");
      PP_CHECK_MSG(!netlist.has_value(), "line " << line_no << ": duplicate design line");
      netlist.emplace(name);
    } else if (keyword == "block") {
      PP_CHECK_MSG(netlist.has_value(), "line " << line_no << ": block before design");
      std::string name, kind_name;
      tokens >> name >> kind_name;
      const std::optional<BlockKind> kind = kind_from_name(kind_name);
      PP_CHECK_MSG(kind.has_value(), "line " << line_no << ": unknown kind " << kind_name);
      Index luts = 0, ffs = 0;
      if (*kind == BlockKind::kClb) tokens >> luts >> ffs;
      PP_CHECK_MSG(blocks_by_name.count(name) == 0,
                   "line " << line_no << ": duplicate block " << name);
      blocks_by_name[name] = netlist->add_block(*kind, name, luts, ffs);
    } else if (keyword == "net") {
      PP_CHECK_MSG(netlist.has_value(), "line " << line_no << ": net before design");
      std::string name, driver_name;
      tokens >> name >> driver_name;
      const auto driver = blocks_by_name.find(driver_name);
      PP_CHECK_MSG(driver != blocks_by_name.end(),
                   "line " << line_no << ": unknown driver " << driver_name);
      std::vector<BlockId> sinks;
      std::string sink_name;
      while (tokens >> sink_name) {
        const auto sink = blocks_by_name.find(sink_name);
        PP_CHECK_MSG(sink != blocks_by_name.end(),
                     "line " << line_no << ": unknown sink " << sink_name);
        sinks.push_back(sink->second);
      }
      PP_CHECK_MSG(!sinks.empty(), "line " << line_no << ": net " << name << " has no sinks");
      netlist->add_net(name, driver->second, std::move(sinks));
    } else {
      PP_CHECK_MSG(false, "line " << line_no << ": unknown keyword " << keyword);
    }
  }
  PP_CHECK_MSG(netlist.has_value(), "no design line found");
  netlist->validate();
  return std::move(*netlist);
}

void write_netlist_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  PP_CHECK_MSG(out.is_open(), "cannot open " << path << " for writing");
  write_netlist(netlist, out);
}

Netlist read_netlist_file(const std::string& path) {
  std::ifstream in(path);
  PP_CHECK_MSG(in.is_open(), "cannot open " << path);
  return read_netlist(in);
}

}  // namespace paintplace::fpga
