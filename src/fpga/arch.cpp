#include "fpga/arch.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace paintplace::fpga {

const char* tile_type_name(TileType t) {
  switch (t) {
    case TileType::kIo: return "IO";
    case TileType::kClb: return "CLB";
    case TileType::kMem: return "MEM";
    case TileType::kMult: return "MULT";
  }
  return "?";
}

namespace {

bool is_periodic_column(Index interior_col, Index start, Index period) {
  if (start <= 0 || period <= 0) return false;
  return interior_col >= start && (interior_col - start) % period == 0;
}

}  // namespace

Arch::Arch(Index interior_cols, Index interior_rows, ArchParams params)
    : width_(interior_cols + 2), height_(interior_rows + 2), params_(params) {
  PP_CHECK_MSG(interior_cols >= 1 && interior_rows >= 1, "architecture needs a logic area");
  PP_CHECK(params_.io_ports_per_pad >= 1);
  PP_CHECK(params_.channel_width >= 1);
  tiles_.assign(static_cast<std::size_t>(width_ * height_), TileType::kClb);

  for (Index y = 0; y < height_; ++y) {
    for (Index x = 0; x < width_; ++x) {
      TileType type;
      if (x == 0 || x == width_ - 1 || y == 0 || y == height_ - 1) {
        type = TileType::kIo;
      } else {
        const Index interior_col = x;  // 1-based interior column index, like the paper's Fig. 2
        if (is_periodic_column(interior_col, params_.mem_column_start, params_.mem_column_period) &&
            interior_cols >= params_.mem_column_start) {
          type = TileType::kMem;
        } else if (is_periodic_column(interior_col, params_.mult_column_start,
                                      params_.mult_column_period) &&
                   interior_cols >= params_.mult_column_start) {
          type = TileType::kMult;
        } else {
          type = TileType::kClb;
        }
      }
      tiles_[static_cast<std::size_t>(y * width_ + x)] = type;
    }
  }

  for (Index y = 0; y < height_; ++y) {
    for (Index x = 0; x < width_; ++x) {
      if (is_corner(x, y)) continue;  // corners hold no pads or logic
      switch (tile_type(x, y)) {
        case TileType::kIo:
          for (Index sub = 0; sub < params_.io_ports_per_pad; ++sub) {
            io_slots_.push_back(GridLoc{x, y, sub});
          }
          break;
        case TileType::kClb: clb_slots_.push_back(GridLoc{x, y, 0}); break;
        case TileType::kMem: mem_slots_.push_back(GridLoc{x, y, 0}); break;
        case TileType::kMult: mult_slots_.push_back(GridLoc{x, y, 0}); break;
      }
    }
  }
}

Arch Arch::auto_sized(const BlockDemand& demand, ArchParams params) {
  PP_CHECK(params.target_utilization > 0.0 && params.target_utilization <= 1.0);
  for (Index side = 2;; ++side) {
    Arch candidate(side, side, params);
    const Index util_cap = static_cast<Index>(
        std::floor(static_cast<double>(candidate.capacity(TileType::kClb)) *
                   params.target_utilization));
    const bool clb_ok = demand.clbs <= util_cap;
    const bool io_ok = demand.ios <= candidate.capacity(TileType::kIo);
    const bool mem_ok = demand.mems <= candidate.capacity(TileType::kMem);
    const bool mult_ok = demand.mults <= candidate.capacity(TileType::kMult);
    if (clb_ok && io_ok && mem_ok && mult_ok) return candidate;
    PP_CHECK_MSG(side < 4096, "auto_sized: demand cannot be satisfied");
  }
}

const std::vector<GridLoc>& Arch::slots(TileType type) const {
  switch (type) {
    case TileType::kIo: return io_slots_;
    case TileType::kClb: return clb_slots_;
    case TileType::kMem: return mem_slots_;
    case TileType::kMult: return mult_slots_;
  }
  PP_CHECK_MSG(false, "unknown tile type");
  return clb_slots_;  // unreachable
}

std::string Arch::summary() const {
  std::ostringstream os;
  os << width_ << "x" << height_ << " grid (interior " << (width_ - 2) << "x" << (height_ - 2)
     << "), IO ports " << capacity(TileType::kIo) << ", CLB " << capacity(TileType::kClb)
     << ", MEM " << capacity(TileType::kMem) << ", MULT " << capacity(TileType::kMult)
     << ", channel width " << params_.channel_width;
  return os.str();
}

}  // namespace paintplace::fpga
