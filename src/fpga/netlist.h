// Netlist data model, usable at two abstraction levels (Fig. 1 of the paper):
//   * flat    — LUT / FF / IO primitives straight out of technology mapping;
//   * packed  — CLB clusters (plus IO/MEM/MULT) ready for placement,
//               produced by the packer or directly by the generator.
// Nets are hyperedges: one driver block, one or more sink blocks.
#pragma once

#include <string>
#include <vector>

#include "common/check.h"
#include "fpga/arch.h"

namespace paintplace::fpga {

using BlockId = Index;
using NetId = Index;

enum class BlockKind : std::uint8_t {
  // Flat-level primitives.
  kLut,
  kFf,
  // Both levels.
  kInputPad,
  kOutputPad,
  kMem,
  kMult,
  // Packed level.
  kClb,
};

const char* block_kind_name(BlockKind k);

/// The tile type a block kind occupies on the fabric (packed level only).
TileType tile_type_for(BlockKind kind);

struct Block {
  BlockId id = -1;
  BlockKind kind = BlockKind::kClb;
  std::string name;
  Index num_luts = 0;  ///< for kClb: LUTs packed inside
  Index num_ffs = 0;   ///< for kClb: FFs packed inside
};

struct Net {
  NetId id = -1;
  std::string name;
  BlockId driver = -1;
  std::vector<BlockId> sinks;

  Index pin_count() const { return 1 + static_cast<Index>(sinks.size()); }
};

/// Summary statistics (the columns of Table 2).
struct NetlistStats {
  Index num_luts = 0;
  Index num_ffs = 0;
  Index num_nets = 0;
  Index num_blocks = 0;
  Index num_inputs = 0;
  Index num_outputs = 0;
  Index num_mems = 0;
  Index num_mults = 0;
  Index num_clbs = 0;
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  BlockId add_block(BlockKind kind, std::string block_name, Index num_luts = 0,
                    Index num_ffs = 0);
  /// Sinks must be distinct from the driver; duplicate sinks are merged.
  NetId add_net(std::string net_name, BlockId driver, std::vector<BlockId> sinks);

  Index num_blocks() const { return static_cast<Index>(blocks_.size()); }
  Index num_nets() const { return static_cast<Index>(nets_.size()); }
  const Block& block(BlockId id) const {
    PP_CHECK_MSG(id >= 0 && id < num_blocks(), "bad block id " << id);
    return blocks_[static_cast<std::size_t>(id)];
  }
  const Net& net(NetId id) const {
    PP_CHECK_MSG(id >= 0 && id < num_nets(), "bad net id " << id);
    return nets_[static_cast<std::size_t>(id)];
  }
  const std::vector<Block>& blocks() const { return blocks_; }
  const std::vector<Net>& nets() const { return nets_; }

  /// Nets a block participates in (as driver or sink).
  const std::vector<NetId>& nets_of(BlockId id) const {
    PP_CHECK(id >= 0 && id < num_blocks());
    return nets_of_block_[static_cast<std::size_t>(id)];
  }

  NetlistStats stats() const;

  /// Structural invariants: valid ids, no self-loop-only nets, every block
  /// on at least one net. Throws CheckError on violation.
  void validate() const;

  /// True if every block kind is placeable (no flat primitives).
  bool is_packed() const;

 private:
  std::string name_;
  std::vector<Block> blocks_;
  std::vector<Net> nets_;
  std::vector<std::vector<NetId>> nets_of_block_;
};

}  // namespace paintplace::fpga
