#include "fpga/pack.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace paintplace::fpga {
namespace {

struct Ble {
  BlockId lut = -1;  ///< -1 when the BLE is a lone FF
  BlockId ff = -1;   ///< -1 when the BLE is a lone LUT
};

/// BLE formation: an FF whose only driver is a LUT and that is that LUT's
/// sole FF sink gets fused with it (the classic VPack pattern); leftovers
/// become single-primitive BLEs.
std::vector<Ble> form_bles(const Netlist& flat) {
  std::vector<Ble> bles;
  std::vector<bool> used(static_cast<std::size_t>(flat.num_blocks()), false);
  // Map FF -> driving block (an FF has exactly one driving net in our model:
  // the first net where it appears as sink).
  for (const Block& b : flat.blocks()) {
    if (b.kind != BlockKind::kFf) continue;
    BlockId driver = -1;
    for (NetId nid : flat.nets_of(b.id)) {
      const Net& n = flat.net(nid);
      if (n.driver != b.id &&
          std::find(n.sinks.begin(), n.sinks.end(), b.id) != n.sinks.end()) {
        driver = n.driver;
        break;
      }
    }
    if (driver >= 0 && flat.block(driver).kind == BlockKind::kLut &&
        !used[static_cast<std::size_t>(driver)]) {
      bles.push_back(Ble{driver, b.id});
      used[static_cast<std::size_t>(driver)] = true;
      used[static_cast<std::size_t>(b.id)] = true;
    }
  }
  for (const Block& b : flat.blocks()) {
    if (used[static_cast<std::size_t>(b.id)]) continue;
    if (b.kind == BlockKind::kLut) {
      bles.push_back(Ble{b.id, -1});
      used[static_cast<std::size_t>(b.id)] = true;
    } else if (b.kind == BlockKind::kFf) {
      bles.push_back(Ble{-1, b.id});
      used[static_cast<std::size_t>(b.id)] = true;
    }
  }
  return bles;
}

}  // namespace

PackResult pack(const Netlist& flat, const PackParams& params) {
  PP_CHECK(params.clb_capacity >= 1);
  const std::vector<Ble> bles = form_bles(flat);
  const Index n_bles = static_cast<Index>(bles.size());

  // Net ids touched by each BLE (for the attraction function).
  std::vector<std::vector<NetId>> ble_nets(static_cast<std::size_t>(n_bles));
  for (Index i = 0; i < n_bles; ++i) {
    std::unordered_set<NetId> nets;
    for (BlockId prim : {bles[static_cast<std::size_t>(i)].lut,
                         bles[static_cast<std::size_t>(i)].ff}) {
      if (prim < 0) continue;
      for (NetId nid : flat.nets_of(prim)) nets.insert(nid);
    }
    ble_nets[static_cast<std::size_t>(i)].assign(nets.begin(), nets.end());
  }

  // Greedy cluster growth.
  std::vector<Index> cluster_of_ble(static_cast<std::size_t>(n_bles), -1);
  Index num_clusters = 0;
  std::vector<bool> clustered(static_cast<std::size_t>(n_bles), false);
  Index remaining = n_bles;
  Index next_seed = 0;
  while (remaining > 0) {
    while (next_seed < n_bles && clustered[static_cast<std::size_t>(next_seed)]) ++next_seed;
    const Index cluster_id = num_clusters++;
    std::unordered_map<NetId, int> cluster_net_weight;
    auto absorb = [&](Index ble_idx) {
      clustered[static_cast<std::size_t>(ble_idx)] = true;
      cluster_of_ble[static_cast<std::size_t>(ble_idx)] = cluster_id;
      remaining -= 1;
      for (NetId nid : ble_nets[static_cast<std::size_t>(ble_idx)]) {
        cluster_net_weight[nid] += 1;
      }
    };
    absorb(next_seed);
    for (Index fill = 1; fill < params.clb_capacity && remaining > 0; ++fill) {
      // Pick the unclustered BLE sharing the most nets with the cluster.
      Index best = -1;
      int best_gain = -1;
      for (Index cand = 0; cand < n_bles; ++cand) {
        if (clustered[static_cast<std::size_t>(cand)]) continue;
        int gain = 0;
        for (NetId nid : ble_nets[static_cast<std::size_t>(cand)]) {
          if (cluster_net_weight.count(nid) > 0) gain += 1;
        }
        if (gain > best_gain) {
          best_gain = gain;
          best = cand;
        }
      }
      if (best < 0) break;
      absorb(best);
    }
  }

  // Emit the packed netlist: clusters first (ids == cluster ids), then the
  // pass-through blocks.
  PackResult result{Netlist(flat.name() + ".packed"), {}, n_bles};
  result.flat_to_packed.assign(static_cast<std::size_t>(flat.num_blocks()), -1);
  std::vector<Index> luts_in(static_cast<std::size_t>(num_clusters), 0);
  std::vector<Index> ffs_in(static_cast<std::size_t>(num_clusters), 0);
  for (Index i = 0; i < n_bles; ++i) {
    const Index c = cluster_of_ble[static_cast<std::size_t>(i)];
    if (bles[static_cast<std::size_t>(i)].lut >= 0) luts_in[static_cast<std::size_t>(c)] += 1;
    if (bles[static_cast<std::size_t>(i)].ff >= 0) ffs_in[static_cast<std::size_t>(c)] += 1;
  }
  for (Index c = 0; c < num_clusters; ++c) {
    result.packed.add_block(BlockKind::kClb, "clb" + std::to_string(c),
                            luts_in[static_cast<std::size_t>(c)],
                            ffs_in[static_cast<std::size_t>(c)]);
  }
  for (Index i = 0; i < n_bles; ++i) {
    const Index c = cluster_of_ble[static_cast<std::size_t>(i)];
    if (bles[static_cast<std::size_t>(i)].lut >= 0) {
      result.flat_to_packed[static_cast<std::size_t>(bles[static_cast<std::size_t>(i)].lut)] = c;
    }
    if (bles[static_cast<std::size_t>(i)].ff >= 0) {
      result.flat_to_packed[static_cast<std::size_t>(bles[static_cast<std::size_t>(i)].ff)] = c;
    }
  }
  for (const Block& b : flat.blocks()) {
    if (b.kind == BlockKind::kLut || b.kind == BlockKind::kFf) continue;
    const BlockId packed_id = result.packed.add_block(b.kind, b.name);
    result.flat_to_packed[static_cast<std::size_t>(b.id)] = packed_id;
  }

  // Re-emit nets whose endpoints span more than one packed block.
  for (const Net& n : flat.nets()) {
    const BlockId driver = result.flat_to_packed[static_cast<std::size_t>(n.driver)];
    std::vector<BlockId> sinks;
    for (BlockId s : n.sinks) {
      const BlockId ps = result.flat_to_packed[static_cast<std::size_t>(s)];
      if (ps != driver) sinks.push_back(ps);
    }
    if (!sinks.empty()) result.packed.add_net(n.name, driver, std::move(sinks));
  }

  // Packing can orphan a CLB whose nets were all absorbed; tie it to its
  // neighbour so the netlist stays connected for placement.
  for (const Block& b : result.packed.blocks()) {
    if (!result.packed.nets_of(b.id).empty()) continue;
    const BlockId other = b.id > 0 ? b.id - 1 : b.id + 1;
    PP_CHECK(other >= 0 && other < result.packed.num_blocks());
    result.packed.add_net("tie" + std::to_string(b.id), b.id, {other});
  }

  result.packed.validate();
  PP_CHECK(result.packed.is_packed());
  return result;
}

}  // namespace paintplace::fpga
