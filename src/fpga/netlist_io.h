// Plain-text netlist interchange format (BLIF-spirited, hypergraph level):
//
//   design <name>
//   block <name> <kind> [<luts> <ffs>]
//   net <name> <driver-block> <sink-block> [<sink-block> ...]
//
// Lines starting with '#' are comments. Block kinds use the names of
// block_kind_name(): LUT, FF, IPAD, OPAD, MEM, MULT, CLB. Lets users bring
// their own designs instead of the synthetic generator, and makes datasets
// reproducible across tools.
#pragma once

#include <iosfwd>
#include <string>

#include "fpga/netlist.h"

namespace paintplace::fpga {

void write_netlist(const Netlist& netlist, std::ostream& out);
Netlist read_netlist(std::istream& in);

void write_netlist_file(const Netlist& netlist, const std::string& path);
Netlist read_netlist_file(const std::string& path);

}  // namespace paintplace::fpga
