// apply_epilogue + the default (unfused) sgemm*_ex lowering.
//
// Deliberately a separate, generically-compiled translation unit: this is
// the semantic definition the fused cpu_opt writeback must match bit-for-bit,
// so it must not pick up cpu_opt_backend.cpp's -march=native flags. The
// per-element operations are plain scalar IEEE single-precision (and libm
// tanh for the kTanh case), which produce the same bits on every ISA the
// build targets.
#include "backend/backend.h"

#include "common/parallel.h"

namespace paintplace::backend {

void apply_epilogue(Index M, Index N, float* C, const Epilogue& ep) {
  if (!ep.enabled() || M == 0 || N == 0) return;
  const Epilogue::Act act = ep.act;
  const float slope = ep.slope;
  const float* bias = ep.bias;
  const bool has_bias = bias != nullptr;
  parallel_for(M, [&](Index ib, Index ie) {
    for (Index i = ib; i < ie; ++i) {
      float* __restrict c = C + i * N;
      // Skip (rather than add 0.0f) when there is no bias: t += 0.0f would
      // flip -0.0 to +0.0 and break bit-equality with the fused writeback.
      const float b = has_bias ? bias[i] : 0.0f;
      for (Index j = 0; j < N; ++j) {
        float t = c[j];
        if (has_bias) t += b;
        c[j] = apply_act(t, act, slope);
      }
    }
  });
}

void ComputeBackend::sgemm_ex(Index M, Index N, Index K, float alpha, const float* A,
                              const float* B, float beta, float* C, const GemmArgs& args) const {
  sgemm(M, N, K, alpha, A, B, beta, C);
  apply_epilogue(M, N, C, args.epilogue);
}

void ComputeBackend::sgemm_at_ex(Index M, Index N, Index K, float alpha, const float* A,
                                 const float* B, float beta, float* C,
                                 const GemmArgs& args) const {
  sgemm_at(M, N, K, alpha, A, B, beta, C);
  apply_epilogue(M, N, C, args.epilogue);
}

void ComputeBackend::sgemm_bt_ex(Index M, Index N, Index K, float alpha, const float* A,
                                 const float* B, float beta, float* C,
                                 const GemmArgs& args) const {
  sgemm_bt(M, N, K, alpha, A, B, beta, C);
  apply_epilogue(M, N, C, args.epilogue);
}

}  // namespace paintplace::backend
