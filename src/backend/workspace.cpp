#include "backend/workspace.h"

#include <algorithm>
#include <cstdint>

namespace paintplace::backend {
namespace {

// First block is big enough for the serving-scale models so most threads
// only ever hold one; growth doubles from there for the paper-scale ones.
constexpr std::size_t kMinBlockFloats = std::size_t{1} << 16;  // 256 KiB

// Blocks start 64-byte-aligned and slices are rounded up to a cache line, so
// consecutive allocations never share one (the GEMM packers write them from
// different loop nests).
constexpr std::size_t kAlignFloats = 16;

std::size_t round_up(std::size_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

}  // namespace

float* Workspace::alloc(std::size_t n) {
  n = std::max<std::size_t>(round_up(n), kAlignFloats);
  // Advance to the first block with room; blocks past `active_` are empty.
  while (active_ < blocks_.size() && blocks_[active_].size - blocks_[active_].used < n) {
    ++active_;
  }
  if (active_ == blocks_.size()) {
    const std::size_t grow = std::max(n, std::max(kMinBlockFloats, 2 * capacity_floats()));
    // operator new[] only guarantees 16-byte alignment; over-allocate one
    // cache line and round the base up so slice offsets stay line-aligned.
    auto storage = std::make_unique<float[]>(grow + kAlignFloats);
    const auto addr = reinterpret_cast<std::uintptr_t>(storage.get());
    const std::size_t skip =
        (kAlignFloats * sizeof(float) - addr % (kAlignFloats * sizeof(float))) % (kAlignFloats * sizeof(float)) /
        sizeof(float);
    float* base = storage.get() + skip;
    blocks_.push_back(Block{std::move(storage), base, grow, 0});
  }
  Block& b = blocks_[active_];
  float* out = b.base + b.used;
  b.used += n;
  return out;
}

void Workspace::reset() { release_to(Mark{0, 0}); }

std::size_t Workspace::capacity_floats() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

std::size_t Workspace::in_use_floats() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= active_ && i < blocks_.size(); ++i) total += blocks_[i].used;
  return total;
}

Workspace::Mark Workspace::mark() const {
  if (blocks_.empty()) return Mark{0, 0};
  return Mark{active_, active_ < blocks_.size() ? blocks_[active_].used : 0};
}

void Workspace::release_to(const Mark& m) {
  if (blocks_.empty()) return;
  PP_CHECK(m.active <= active_);
  for (std::size_t i = m.active + 1; i < blocks_.size(); ++i) blocks_[i].used = 0;
  active_ = std::min(m.active, blocks_.size() - 1);
  blocks_[active_].used = m.used;
}

Workspace& tls_workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace paintplace::backend
