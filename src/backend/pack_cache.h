// PackedWeightCache — process-wide pack-once store for GEMM weight panels.
//
// Every conv/deconv forward lowers its weight tensor to the A operand of a
// GEMM, and before this cache existed cpu_opt re-gathered those panels into
// micro-kernel strip layout on every call. Weights are long-lived and change
// only at well-known points (optimizer steps, checkpoint restore, hot-swap),
// so the cache packs each (weights, variant, shape) once and hands the
// packed panels back on every subsequent forward.
//
// Keying and staleness: an entry is keyed on the weight buffer's address
// *and* its version — a process-unique, monotonically increasing number the
// nn layer bumps on every in-place mutation (see nn::Parameter). Address
// reuse after a model is destroyed therefore can never alias an old entry
// (the new tensor has a fresh version), and a mutation that forgets to bump
// the version trips the fingerprint check below instead of silently serving
// stale weights. Invalidation is also explicit: Adam::step, checkpoint
// restore, and ModelRegistry hot-swap call invalidate() on the buffers they
// retire so the cache's bytes go back immediately rather than waiting for
// LRU pressure.
//
// Stale tripwire: at pack time the cache fingerprints up to 64 sampled
// elements of the live weight buffer (bit patterns, including the first and
// last element). Every hit re-samples and compares; a mismatch means the
// weights changed under an unchanged (ptr, version) key and throws
// CheckError — loud by design, because the alternative is a model serving
// forecasts from weights that no longer exist.
//
// Capacity: LRU by bytes, default 256 MiB, overridable with the
// PAINTPLACE_PACK_CACHE_MB environment variable (read once) or
// set_capacity_bytes(). Entries are handed out as shared_ptr, so an
// eviction or invalidation never pulls packed panels out from under an
// in-flight GEMM.
//
// Observability: hits/misses/evictions land on the global metrics registry
// as backend_pack_cache_{hits,misses,evictions}_total plus the
// backend_pack_cache_bytes gauge.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace paintplace::backend {

/// An immutable packed panel buffer. The layout is whatever the packing
/// backend chose — the cache only tracks identity and size.
struct PackedWeights {
  std::vector<float> data;

  std::size_t bytes() const { return data.size() * sizeof(float); }
};

class PackedWeightCache {
 public:
  /// The process-wide cache instance (intentionally leaked, like the backend
  /// and metrics registries, so teardown order can never matter).
  static PackedWeightCache& instance();

  /// Cache key: weight buffer identity + the pack layout it was packed for.
  /// `variant` is backend-private (cpu_opt uses its operand-layout enum);
  /// backends must not collide on values they do not own, so the convention
  /// is variant = backend_id * 16 + layout.
  struct Key {
    const void* ptr = nullptr;
    std::uint64_t version = 0;
    int variant = 0;
    Index M = 0;
    Index K = 0;

    bool operator==(const Key&) const = default;
  };

  /// Returns the packed panels for `key`, packing via `pack` on a miss.
  /// `live` / `live_count` is the current weight buffer the key describes —
  /// used for the fingerprint tripwire on both miss (record) and hit
  /// (verify; throws CheckError on mismatch). `packed_floats` is the size
  /// of the buffer `pack` fills. Packing runs outside the cache lock; if
  /// two threads race on the same key, one result wins and both callers get
  /// it.
  std::shared_ptr<const PackedWeights> get_or_pack(
      const Key& key, const float* live, Index live_count, std::size_t packed_floats,
      const std::function<void(float*)>& pack);

  /// Drops every entry whose key points at `ptr`, regardless of version or
  /// variant. In-flight holders of the shared_ptr are unaffected.
  void invalidate(const void* ptr);

  /// Drops everything (tests).
  void clear();

  void set_capacity_bytes(std::size_t bytes);
  std::size_t capacity_bytes() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t stale_hits = 0;  ///< fingerprint mismatches detected (then thrown)
    std::size_t bytes = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

 private:
  PackedWeightCache();

  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Fingerprint {
    static constexpr int kSamples = 64;
    std::array<std::uint32_t, kSamples> bits{};
    int count = 0;
  };
  struct Entry {
    std::shared_ptr<const PackedWeights> packed;
    Fingerprint fp;
    std::list<Key>::iterator lru_it;
  };

  static Fingerprint fingerprint(const float* live, Index live_count);
  void evict_to_capacity_locked();
  void publish_bytes_locked();

  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::list<Key> lru_;  ///< front = most recent
  std::size_t capacity_bytes_;
  std::size_t bytes_ = 0;
  Stats stats_{};
};

}  // namespace paintplace::backend
