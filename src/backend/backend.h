// paintplace::backend — pluggable compute backends for the dense kernels.
//
// Every conv/deconv in the cGAN lowers to one of three single-precision GEMM
// variants (see nn/gemm.h); the ComputeBackend interface pins those down so
// the math can be swapped without touching the layers. Two implementations
// ship in-tree:
//
//   * "reference" — the cache-blocked triple loops the repo grew up with.
//     Simple, portable, and the bit-exactness oracle the optimised backends
//     are tested against.
//   * "cpu_opt"   — packed, register-blocked micro-kernel (BLIS-style
//     MC/KC/NC tiling) parallelised over row/column tiles. The serving
//     speed lever; results are deterministic across thread counts and
//     identical between batched and per-sample lowering.
//
// Selection: the process-wide active backend defaults to "cpu_opt", can be
// pre-selected with the PAINTPLACE_BACKEND environment variable (read once,
// on first use), and switched at runtime with set_active_backend(). External
// code can add backends via register_backend().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"

namespace paintplace::backend {

/// Environment variable naming the backend to activate at startup.
inline constexpr const char* kBackendEnvVar = "PAINTPLACE_BACKEND";
/// Backend used when neither the environment nor the API chose one.
inline constexpr const char* kDefaultBackendName = "cpu_opt";

/// A provider of the dense kernels. Implementations must be stateless or
/// internally synchronised: one instance serves every thread in the process.
class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;

  /// Stable identifier ("reference", "cpu_opt", ...).
  virtual const char* name() const = 0;

  /// C = alpha * A(MxK) * B(KxN) + beta * C(MxN); all row-major, no aliasing.
  virtual void sgemm(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                     float beta, float* C) const = 0;

  /// C = alpha * A^T * B + beta * C, where A is stored (KxM) row-major.
  virtual void sgemm_at(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                        float beta, float* C) const = 0;

  /// C = alpha * A * B^T + beta * C, where B is stored (NxK) row-major.
  virtual void sgemm_bt(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                        float beta, float* C) const = 0;
};

/// The backend all nn-layer GEMMs dispatch to. Resolves the PAINTPLACE_BACKEND
/// environment variable on first call; throws CheckError if it names an
/// unknown backend. Lock-free after initialisation.
ComputeBackend& active_backend();

/// Switches the process-wide active backend. Throws CheckError on unknown
/// names. Do not call concurrently with in-flight forward passes that must
/// land on one specific backend.
void set_active_backend(const std::string& name);

/// Registered backend names, in registration order.
std::vector<std::string> backend_names();

/// Looks a backend up by name (nullptr if absent) without activating it —
/// benches and tests use this to drive several backends side by side.
ComputeBackend* find_backend(const std::string& name);

/// Adds a backend to the registry. Throws CheckError on duplicate names.
void register_backend(std::unique_ptr<ComputeBackend> backend);

/// RAII backend switch for tests and benches: activates `name`, restores the
/// previously active backend on destruction.
class ScopedBackend {
 public:
  explicit ScopedBackend(const std::string& name);
  ~ScopedBackend();

  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  std::string prev_;
};

// Factories for the built-in backends (internal; the registry installs both).
std::unique_ptr<ComputeBackend> make_reference_backend();
std::unique_ptr<ComputeBackend> make_cpu_opt_backend();

}  // namespace paintplace::backend
