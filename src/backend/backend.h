// paintplace::backend — pluggable compute backends for the dense kernels.
//
// Every conv/deconv in the cGAN lowers to one of three single-precision GEMM
// variants (see nn/gemm.h); the ComputeBackend interface pins those down so
// the math can be swapped without touching the layers. Two implementations
// ship in-tree:
//
//   * "reference" — the cache-blocked triple loops the repo grew up with.
//     Simple, portable, and the bit-exactness oracle the optimised backends
//     are tested against.
//   * "cpu_opt"   — packed, register-blocked micro-kernel (BLIS-style
//     MC/KC/NC tiling) parallelised over row/column tiles. The serving
//     speed lever; results are deterministic across thread counts and
//     identical between batched and per-sample lowering.
//
// Selection: the process-wide active backend defaults to "cpu_opt", can be
// pre-selected with the PAINTPLACE_BACKEND environment variable (read once,
// on first use), and switched at runtime with set_active_backend(). External
// code can add backends via register_backend().
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"

namespace paintplace::backend {

/// Environment variable naming the backend to activate at startup.
inline constexpr const char* kBackendEnvVar = "PAINTPLACE_BACKEND";
/// Backend used when neither the environment nor the API chose one.
inline constexpr const char* kDefaultBackendName = "cpu_opt";

/// Elementwise epilogue a GEMM applies to C after the accumulation: an
/// optional per-row bias add followed by an optional activation. The conv
/// layers use it to fold bias + LeakyReLU/ReLU/tanh into the kernel's
/// C-writeback so inference never re-traverses an activation tensor.
///
/// Contract for backend authors: sgemm*_ex(..., ep) must be bit-identical to
/// the plain sgemm* followed by apply_epilogue(M, N, C, ep). apply_epilogue
/// processes each element as `t = C[i*N+j]; t += bias[i]; t = act(t)` with
/// act defined by apply_act below — fuse those exact scalar operations, in
/// that order, on the final accumulated value (i.e. only after the last K
/// panel's contribution has landed). tests/backend/test_conformance.cpp
/// enforces this for every registered backend.
struct Epilogue {
  enum class Act : std::uint8_t { kNone = 0, kReLU, kLeakyReLU, kTanh };

  Act act = Act::kNone;
  float slope = 0.0f;           ///< LeakyReLU negative slope
  const float* bias = nullptr;  ///< per-row bias (length M); nullptr = none

  bool enabled() const { return act != Act::kNone || bias != nullptr; }
};

/// The scalar activation every epilogue implementation must use. Plain IEEE
/// single-precision ops (and libm tanh), so the result is identical no
/// matter which translation unit or ISA the call inlines into.
inline float apply_act(float t, Epilogue::Act act, float slope) {
  switch (act) {
    case Epilogue::Act::kNone: return t;
    case Epilogue::Act::kReLU: return t > 0.0f ? t : 0.0f;
    case Epilogue::Act::kLeakyReLU: return t > 0.0f ? t : slope * t;
    case Epilogue::Act::kTanh: return std::tanh(t);
  }
  return t;
}

/// Applies `ep` to C (MxN, row-major) in place, one pass. The semantic
/// definition of the epilogue — fused implementations must match it
/// bit-for-bit — and the fallback the default sgemm*_ex overloads use.
void apply_epilogue(Index M, Index N, float* C, const Epilogue& ep);

/// Extended-call arguments shared by the sgemm*_ex entry points.
struct GemmArgs {
  Epilogue epilogue{};

  /// When `cache_weights` is set, the A operand is a long-lived weight
  /// matrix (stable pointer, mutation tracked by `weight_version`) and the
  /// backend may keep its packed panels in the process-wide
  /// PackedWeightCache across calls. Callers own the version discipline:
  /// every in-place mutation of A must come with a new version (see
  /// nn::Parameter::bump_version), or the cache's stale tripwire aborts.
  bool cache_weights = false;
  std::uint64_t weight_version = 0;
};

/// A provider of the dense kernels. Implementations must be stateless or
/// internally synchronised: one instance serves every thread in the process.
class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;

  /// Stable identifier ("reference", "cpu_opt", ...).
  virtual const char* name() const = 0;

  /// C = alpha * A(MxK) * B(KxN) + beta * C(MxN); all row-major, no aliasing.
  virtual void sgemm(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                     float beta, float* C) const = 0;

  /// C = alpha * A^T * B + beta * C, where A is stored (KxM) row-major.
  virtual void sgemm_at(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                        float beta, float* C) const = 0;

  /// C = alpha * A * B^T + beta * C, where B is stored (NxK) row-major.
  virtual void sgemm_bt(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                        float beta, float* C) const = 0;

  // Extended entry points: same math plus a fused epilogue and optional
  // packed-weight caching of the A operand. The defaults lower to the plain
  // kernel followed by an apply_epilogue pass, so a new backend is correct
  // (if unfused) from day one; cpu_opt overrides them with real fusion.
  virtual void sgemm_ex(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                        float beta, float* C, const GemmArgs& args) const;
  virtual void sgemm_at_ex(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                           float beta, float* C, const GemmArgs& args) const;
  virtual void sgemm_bt_ex(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                           float beta, float* C, const GemmArgs& args) const;
};

/// The backend all nn-layer GEMMs dispatch to. Resolves the PAINTPLACE_BACKEND
/// environment variable on first call; throws CheckError if it names an
/// unknown backend. Lock-free after initialisation.
ComputeBackend& active_backend();

/// Switches the process-wide active backend. Throws CheckError on unknown
/// names. Do not call concurrently with in-flight forward passes that must
/// land on one specific backend.
void set_active_backend(const std::string& name);

/// Registered backend names, in registration order.
std::vector<std::string> backend_names();

/// Looks a backend up by name (nullptr if absent) without activating it —
/// benches and tests use this to drive several backends side by side.
ComputeBackend* find_backend(const std::string& name);

/// Adds a backend to the registry. Throws CheckError on duplicate names.
void register_backend(std::unique_ptr<ComputeBackend> backend);

/// RAII backend switch for tests and benches: activates `name`, restores the
/// previously active backend on destruction.
class ScopedBackend {
 public:
  explicit ScopedBackend(const std::string& name);
  ~ScopedBackend();

  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  std::string prev_;
};

// Factories for the built-in backends (internal; the registry installs both).
std::unique_ptr<ComputeBackend> make_reference_backend();
std::unique_ptr<ComputeBackend> make_cpu_opt_backend();

}  // namespace paintplace::backend
