#include "backend/pack_cache.h"

#include <cstdlib>
#include <cstring>

#include "obs/metrics_registry.h"

namespace paintplace::backend {
namespace {

constexpr std::size_t kDefaultCapacityBytes = 256u << 20;  // 256 MiB

std::size_t capacity_from_env() {
  if (const char* v = std::getenv("PAINTPLACE_PACK_CACHE_MB")) {
    const long long mb = std::atoll(v);
    if (mb >= 0) return static_cast<std::size_t>(mb) << 20;
  }
  return kDefaultCapacityBytes;
}

struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Gauge& bytes;
};

/// Bound once; instrument addresses are stable for the registry's lifetime.
CacheMetrics& cache_metrics() {
  static CacheMetrics* m = [] {
    auto& reg = obs::MetricsRegistry::global();
    return new CacheMetrics{
        reg.counter("backend_pack_cache_hits_total",
                    "Packed-weight cache hits (weight panels reused across GEMM calls)"),
        reg.counter("backend_pack_cache_misses_total",
                    "Packed-weight cache misses (panels packed from scratch)"),
        reg.counter("backend_pack_cache_evictions_total",
                    "Packed-weight cache entries dropped by LRU pressure or invalidation"),
        reg.gauge("backend_pack_cache_bytes", "Bytes of packed weight panels currently cached"),
    };
  }();
  return *m;
}

}  // namespace

PackedWeightCache::PackedWeightCache() : capacity_bytes_(capacity_from_env()) {}

PackedWeightCache& PackedWeightCache::instance() {
  static PackedWeightCache* cache = new PackedWeightCache;  // leaked on purpose
  return *cache;
}

std::size_t PackedWeightCache::KeyHash::operator()(const Key& k) const {
  // splitmix64-style mix over the fields; quality matters little at the
  // entry counts involved (one per layer per variant).
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  std::uint64_t h = reinterpret_cast<std::uintptr_t>(k.ptr);
  h = mix(h, k.version);
  h = mix(h, static_cast<std::uint64_t>(k.variant));
  h = mix(h, static_cast<std::uint64_t>(k.M));
  h = mix(h, static_cast<std::uint64_t>(k.K));
  return static_cast<std::size_t>(h);
}

PackedWeightCache::Fingerprint PackedWeightCache::fingerprint(const float* live,
                                                              Index live_count) {
  Fingerprint fp;
  if (live == nullptr || live_count <= 0) return fp;
  const int n = static_cast<int>(std::min<Index>(Fingerprint::kSamples, live_count));
  fp.count = n;
  for (int s = 0; s < n; ++s) {
    // Evenly spread samples that always include element 0 and the last
    // element, so edge mutations are caught too.
    const Index i = n == 1 ? 0 : (static_cast<Index>(s) * (live_count - 1)) / (n - 1);
    std::uint32_t bits;
    std::memcpy(&bits, live + i, sizeof bits);
    fp.bits[static_cast<std::size_t>(s)] = bits;
  }
  return fp;
}

std::shared_ptr<const PackedWeights> PackedWeightCache::get_or_pack(
    const Key& key, const float* live, Index live_count, std::size_t packed_floats,
    const std::function<void(float*)>& pack) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Stale tripwire: the live weights must still carry the bits they had
      // at pack time. A mismatch means somebody mutated the buffer without
      // bumping its version — fail loudly instead of serving old weights.
      const Fingerprint now = fingerprint(live, live_count);
      if (now.count != it->second.fp.count || now.bits != it->second.fp.bits) {
        ++stats_.stale_hits;
        PP_CHECK_MSG(false, "PackedWeightCache: weights at " << key.ptr << " (version "
                                << key.version
                                << ") changed in place without a version bump — stale "
                                   "packed panels would have been served");
      }
      ++stats_.hits;
      cache_metrics().hits.fetch_add(1);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.packed;
    }
  }

  // Miss: pack outside the lock (packing a big layer takes far longer than
  // any map operation). If another thread packed the same key meanwhile,
  // its entry wins and ours is dropped.
  auto packed = std::make_shared<PackedWeights>();
  packed->data.resize(packed_floats);
  pack(packed->data.data());
  const Fingerprint fp = fingerprint(live, live_count);

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  cache_metrics().misses.fetch_add(1);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.packed;
  }
  lru_.push_front(key);
  bytes_ += packed->bytes();
  entries_.emplace(key, Entry{packed, fp, lru_.begin()});
  evict_to_capacity_locked();
  publish_bytes_locked();
  return packed;
}

void PackedWeightCache::invalidate(const void* ptr) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.ptr == ptr) {
      bytes_ -= it->second.packed->bytes();
      ++stats_.evictions;
      cache_metrics().evictions.fetch_add(1);
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  publish_bytes_locked();
}

void PackedWeightCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.evictions += entries_.size();
  cache_metrics().evictions.fetch_add(entries_.size());
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  publish_bytes_locked();
}

void PackedWeightCache::set_capacity_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_bytes_ = bytes;
  evict_to_capacity_locked();
  publish_bytes_locked();
}

std::size_t PackedWeightCache::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_bytes_;
}

PackedWeightCache::Stats PackedWeightCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.bytes = bytes_;
  s.entries = entries_.size();
  return s;
}

void PackedWeightCache::evict_to_capacity_locked() {
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    bytes_ -= it->second.packed->bytes();
    ++stats_.evictions;
    cache_metrics().evictions.fetch_add(1);
    entries_.erase(it);
    lru_.pop_back();
  }
}

void PackedWeightCache::publish_bytes_locked() {
  cache_metrics().bytes.set(static_cast<double>(bytes_));
}

}  // namespace paintplace::backend
