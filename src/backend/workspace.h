// Workspace — a per-thread scratch arena for kernel temporaries.
//
// The convolution lowering needs large short-lived float buffers (im2col
// matrices, packed GEMM panels, batched-output staging). Allocating them
// with std::vector per forward pass puts a malloc/free pair and a page-fault
// storm on the serving hot path; the Workspace instead hands out bump-pointer
// slices of blocks that are retained for the lifetime of the thread, so a
// steady-state forward pass performs zero heap allocations.
//
// Usage: open a WorkspaceScope, alloc() what the kernel needs, and let the
// scope's destructor return the space to the arena (memory is kept, only the
// high-water mark rolls back). Scopes nest; pointers from an inner scope die
// with it, pointers from an outer scope survive it.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/check.h"

namespace paintplace::backend {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Returns an uninitialised scratch slice of `n` floats, valid until the
  /// enclosing WorkspaceScope closes (or reset()).
  float* alloc(std::size_t n);

  /// Rolls every block back to empty. Capacity is retained.
  void reset();

  /// Total floats of backing storage currently held (never shrinks).
  std::size_t capacity_floats() const;
  /// Floats currently handed out.
  std::size_t in_use_floats() const;

 private:
  friend class WorkspaceScope;

  struct Block {
    std::unique_ptr<float[]> storage;  ///< owns base + alignment slack
    float* base = nullptr;             ///< 64-byte-aligned start of usable space
    std::size_t size = 0;
    std::size_t used = 0;
  };
  struct Mark {
    std::size_t active = 0;
    std::size_t used = 0;
  };

  Mark mark() const;
  void release_to(const Mark& m);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  ///< index of the block currently being bumped
};

/// The calling thread's workspace (one arena per thread — pool workers and
/// serving threads each grow their own and never contend).
Workspace& tls_workspace();

/// RAII frame over a Workspace: records the arena's high-water mark on entry
/// and rolls back to it on exit.
class WorkspaceScope {
 public:
  WorkspaceScope() : ws_(tls_workspace()), mark_(ws_.mark()) {}
  explicit WorkspaceScope(Workspace& ws) : ws_(ws), mark_(ws_.mark()) {}
  ~WorkspaceScope() { ws_.release_to(mark_); }

  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;

  float* alloc(std::size_t n) { return ws_.alloc(n); }

 private:
  Workspace& ws_;
  Workspace::Mark mark_;
};

}  // namespace paintplace::backend
