// "reference" backend: the cache-blocked triple-loop GEMMs the repo's layers
// were originally built on. Kept bit-for-bit as the oracle the optimised
// backends are tested against — change nothing here without updating the
// backend test suite's expectations.
#include <algorithm>

#include "backend/backend.h"
#include "common/parallel.h"

namespace paintplace::backend {
namespace {

// Convolution lowers to GEMMs whose row count is the channel count (small)
// and whose column count is the spatial extent (large), so the kernels
// parallelise over a 2-D grid of (row block x column block) tiles — row-only
// partitioning would leave most cores idle on channel-thin matrices.
constexpr Index kRowBlock = 48;
constexpr Index kColBlock = 512;
constexpr Index kKBlock = 256;

struct TileGrid {
  Index row_blocks, col_blocks;
  Index tiles() const { return row_blocks * col_blocks; }
};

TileGrid grid_for(Index M, Index N) {
  return TileGrid{(M + kRowBlock - 1) / kRowBlock, (N + kColBlock - 1) / kColBlock};
}

class ReferenceBackend final : public ComputeBackend {
 public:
  const char* name() const override { return "reference"; }

  void sgemm(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
             float* C) const override {
    if (M == 0 || N == 0) return;
    const TileGrid grid = grid_for(M, N);
    parallel_for_each(grid.tiles(), [&](Index tile) {
      const Index i0 = (tile / grid.col_blocks) * kRowBlock;
      const Index i1 = std::min(M, i0 + kRowBlock);
      const Index j0 = (tile % grid.col_blocks) * kColBlock;
      const Index j1 = std::min(N, j0 + kColBlock);
      for (Index i = i0; i < i1; ++i) {
        float* c = C + i * N;
        if (beta == 0.0f) {
          std::fill(c + j0, c + j1, 0.0f);
        } else if (beta != 1.0f) {
          for (Index j = j0; j < j1; ++j) c[j] *= beta;
        }
      }
      for (Index k0 = 0; k0 < K; k0 += kKBlock) {
        const Index k1 = std::min(K, k0 + kKBlock);
        for (Index i = i0; i < i1; ++i) {
          const float* a = A + i * K;
          float* c = C + i * N;
          for (Index k = k0; k < k1; ++k) {
            const float aik = alpha * a[k];
            if (aik == 0.0f) continue;
            const float* b = B + k * N;
            for (Index j = j0; j < j1; ++j) c[j] += aik * b[j];
          }
        }
      }
    });
  }

  void sgemm_at(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
                float* C) const override {
    // A is KxM row-major; A^T(i,k) = A[k*M + i]. Same tiling as sgemm with a
    // strided read of A — contiguous traffic stays on the B and C rows.
    if (M == 0 || N == 0) return;
    const TileGrid grid = grid_for(M, N);
    parallel_for_each(grid.tiles(), [&](Index tile) {
      const Index i0 = (tile / grid.col_blocks) * kRowBlock;
      const Index i1 = std::min(M, i0 + kRowBlock);
      const Index j0 = (tile % grid.col_blocks) * kColBlock;
      const Index j1 = std::min(N, j0 + kColBlock);
      for (Index i = i0; i < i1; ++i) {
        float* c = C + i * N;
        if (beta == 0.0f) {
          std::fill(c + j0, c + j1, 0.0f);
        } else if (beta != 1.0f) {
          for (Index j = j0; j < j1; ++j) c[j] *= beta;
        }
      }
      for (Index k0 = 0; k0 < K; k0 += kKBlock) {
        const Index k1 = std::min(K, k0 + kKBlock);
        for (Index i = i0; i < i1; ++i) {
          float* c = C + i * N;
          for (Index k = k0; k < k1; ++k) {
            const float aik = alpha * A[k * M + i];
            if (aik == 0.0f) continue;
            const float* b = B + k * N;
            for (Index j = j0; j < j1; ++j) c[j] += aik * b[j];
          }
        }
      }
    });
  }

  void sgemm_bt(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
                float* C) const override {
    // B is NxK row-major; C(i,j) = dot(A row i, B row j) — two contiguous
    // streams per output element.
    if (M == 0 || N == 0) return;
    const TileGrid grid = grid_for(M, N);
    parallel_for_each(grid.tiles(), [&](Index tile) {
      const Index i0 = (tile / grid.col_blocks) * kRowBlock;
      const Index i1 = std::min(M, i0 + kRowBlock);
      const Index j0 = (tile % grid.col_blocks) * kColBlock;
      const Index j1 = std::min(N, j0 + kColBlock);
      for (Index i = i0; i < i1; ++i) {
        const float* a = A + i * K;
        float* c = C + i * N;
        for (Index j = j0; j < j1; ++j) {
          const float* b = B + j * K;
          float acc = 0.0f;
          for (Index k = 0; k < K; ++k) acc += a[k] * b[k];
          c[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * c[j]);
        }
      }
    });
  }
};

}  // namespace

std::unique_ptr<ComputeBackend> make_reference_backend() {
  return std::make_unique<ReferenceBackend>();
}

}  // namespace paintplace::backend
