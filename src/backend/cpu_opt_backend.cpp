// "cpu_opt" backend: BLIS-style packed, register-blocked GEMM with pack-once
// weight caching and fused epilogues.
//
// All three variants run through one blocked driver parameterised on pack
// routines for op(A) and op(B) — each operand layout gets a specialised
// packer with contiguous reads (the old generic accessor lambdas gathered
// sgemm_bt's B with stride-K loads), and the hot macro/micro-kernel is
// shared.
//
// Tiling (all compile-time constants):
//   * The C plane is cut into kRowTile x kColTile task tiles; tasks are
//     independent and fan out over common/parallel. Each C element belongs
//     to exactly one task and its K loop runs in one fixed order, so results
//     are bit-identical for every thread count.
//   * Inside a task, K is blocked by kKC. Per K panel the task packs its
//     A block into MR-row strips (k-major) and its B block into NR-column
//     strips, zero-padded to full strips, into the thread's Workspace —
//     steady state does no heap allocation.
//   * The micro-kernel accumulates an MR x NR tile of C in registers over
//     the whole K panel: MR*NR independent FMA chains that vectorise across
//     the NR lanes. Lane position never feeds back into the arithmetic, so
//     a column's values do not depend on where in the matrix it sits — this
//     is what keeps batched conv lowering bit-exact vs per-sample (a sample's
//     columns land at different offsets in the wide batched GEMM).
//
// Pack-once weight caching (sgemm*_ex with GemmArgs::cache_weights): the
// whole of op(A) is packed once into a panel-major strip image — panel k0
// starts at total_strips*MR*k0, strip s within it at s*MR*kc — and stored in
// the process-wide PackedWeightCache keyed on (pointer, version, variant,
// M, K). Row tiles start at multiples of kRowTile (a multiple of MR), so a
// tile just indexes strips from i0/MR; the cached bytes are exactly what
// per-tile packing would produce, which keeps cached and uncached runs
// bit-identical. Packing then disappears from the steady-state forward pass
// entirely (the big win at N == one sample's columns, where pack time was a
// fixed tax per call).
//
// Fused epilogue (GemmArgs::epilogue): bias-add + activation are applied in
// the C-writeback of the *last* K panel, per element, in exactly the order
// apply_epilogue defines — so sgemm_ex(..., ep) is bit-identical to
// sgemm(...) followed by apply_epilogue(...), and the activation never costs
// a second pass over C.
//
// Build note: CMake compiles this file with -march=native when available
// (PAINTPLACE_NATIVE_KERNEL, default ON) so the micro-kernel vectorises to
// the widest FMA the build host has; everything here is plain C++ and also
// compiles (slower) without it.
#include <algorithm>
#include <cstring>
#include <memory>

#include "backend/backend.h"
#include "backend/pack_cache.h"
#include "backend/workspace.h"
#include "common/parallel.h"

namespace paintplace::backend {
namespace {

constexpr Index MR = 6;   ///< micro-kernel rows (accumulator rows)
constexpr Index NR = 16;  ///< micro-kernel columns (one or two SIMD vectors)
constexpr Index kKC = 256;       ///< K panel — packed strips stay L1/L2 resident
constexpr Index kRowTile = 96;   ///< task tile rows (multiple of MR)
constexpr Index kColTile = 512;  ///< task tile columns (multiple of NR)

static_assert(kRowTile % MR == 0 && kColTile % NR == 0);

// PackedWeightCache key variants owned by this backend (backend id 0).
enum : int { kVariantANormal = 0, kVariantATrans = 1 };

// ---- operand packers --------------------------------------------------------
// All A packers produce the same layout: MR-row strips, k-major within a
// strip (d[k*MR + r]), rows zero-padded to a full strip. Likewise B packers:
// NR-column strips, k-major (d[k*NR + c]), columns zero-padded. Only the
// gather order differs, chosen per storage layout for contiguous reads.

/// op(A) rows [0,mt) x [0,kc) where A is row-major with row stride `lda`
/// (sgemm / sgemm_bt): row r is contiguous in k.
void pack_a_rows(const float* __restrict A, Index lda, Index mt, Index kc,
                 float* __restrict dst) {
  const Index strips = (mt + MR - 1) / MR;
  for (Index s = 0; s < strips; ++s) {
    const Index i0 = s * MR;
    const Index rows = std::min(MR, mt - i0);
    float* __restrict d = dst + s * MR * kc;
    for (Index r = 0; r < rows; ++r) {
      const float* __restrict src = A + (i0 + r) * lda;
      for (Index k = 0; k < kc; ++k) d[k * MR + r] = src[k];
    }
    for (Index r = rows; r < MR; ++r) {
      for (Index k = 0; k < kc; ++k) d[k * MR + r] = 0.0f;
    }
  }
}

/// op(A) = A^T where A is stored (K x M) row-major with row stride `lda`
/// (sgemm_at): row k of A is contiguous in i, so gather k-outer.
void pack_a_trans(const float* __restrict A, Index lda, Index mt, Index kc,
                  float* __restrict dst) {
  const Index strips = (mt + MR - 1) / MR;
  for (Index s = 0; s < strips; ++s) {
    const Index i0 = s * MR;
    const Index rows = std::min(MR, mt - i0);
    float* __restrict d = dst + s * MR * kc;
    if (rows == MR) {
      for (Index k = 0; k < kc; ++k) {
        const float* __restrict src = A + k * lda + i0;
        for (Index r = 0; r < MR; ++r) d[k * MR + r] = src[r];
      }
    } else {
      for (Index k = 0; k < kc; ++k) {
        const float* __restrict src = A + k * lda + i0;
        for (Index r = 0; r < rows; ++r) d[k * MR + r] = src[r];
        for (Index r = rows; r < MR; ++r) d[k * MR + r] = 0.0f;
      }
    }
  }
}

/// op(B) rows [0,kc) x columns [0,nt) where B is row-major with row stride
/// `ldb` (sgemm / sgemm_at): row k is contiguous in j — reads and writes
/// both stream.
void pack_b_rows(const float* __restrict B, Index ldb, Index nt, Index kc,
                 float* __restrict dst) {
  const Index strips = (nt + NR - 1) / NR;
  for (Index s = 0; s < strips; ++s) {
    const Index j0 = s * NR;
    const Index cols = std::min(NR, nt - j0);
    float* __restrict d = dst + s * NR * kc;
    if (cols == NR) {
      for (Index k = 0; k < kc; ++k) {
        std::memcpy(d + k * NR, B + k * ldb + j0, sizeof(float) * NR);
      }
    } else {
      for (Index k = 0; k < kc; ++k) {
        const float* __restrict src = B + k * ldb + j0;
        for (Index c = 0; c < cols; ++c) d[k * NR + c] = src[c];
        for (Index c = cols; c < NR; ++c) d[k * NR + c] = 0.0f;
      }
    }
  }
}

/// op(B) = B^T where B is stored (N x K) row-major with row stride `ldb`
/// (sgemm_bt): column j of op(B) is row j of B, contiguous in k — gather
/// c-outer so every read streams (the generic accessor used to load with
/// stride K here, the backward pass's sore spot).
void pack_b_trans(const float* __restrict B, Index ldb, Index nt, Index kc,
                  float* __restrict dst) {
  const Index strips = (nt + NR - 1) / NR;
  for (Index s = 0; s < strips; ++s) {
    const Index j0 = s * NR;
    const Index cols = std::min(NR, nt - j0);
    float* __restrict d = dst + s * NR * kc;
    for (Index c = 0; c < cols; ++c) {
      const float* __restrict src = B + (j0 + c) * ldb;
      for (Index k = 0; k < kc; ++k) d[k * NR + c] = src[k];
    }
    for (Index c = cols; c < NR; ++c) {
      for (Index k = 0; k < kc; ++k) d[k * NR + c] = 0.0f;
    }
  }
}

/// Packs ALL of op(A) (M x K) into the panel-major strip image the cached
/// path reads: panel k0 at strips*MR*k0, strip s within it at s*MR*kc.
/// `pack_tile(i0, mt, k0, kc, dst)` is the same per-tile packer the uncached
/// path uses, so the bytes are identical to per-tile packing.
template <class PackTileA>
void pack_a_full(Index M, Index K, PackTileA pack_tile, float* dst) {
  const Index strips = (M + MR - 1) / MR;
  parallel_for_each(strips, [&](Index s) {
    const Index i0 = s * MR;
    const Index mt = std::min(MR, M - i0);
    for (Index k0 = 0; k0 < K; k0 += kKC) {
      const Index kc = std::min(kKC, K - k0);
      pack_tile(i0, mt, k0, kc, dst + strips * MR * k0 + s * MR * kc);
    }
  });
}

/// acc(MR x NR) = sum_k a_strip(:,k) * b_strip(k,:).
#if defined(__GNUC__) || defined(__clang__)
// The accumulators are spelled as explicit vector-extension registers: a
// plain scalar loop here gets outer-loop-vectorised by GCC with every
// accumulator spilled to the stack, which is ~40x slower than keeping the
// 12 row-vectors live across the K loop. vector_size(32) lowers to two SSE
// ops per update when AVX is off, so the file stays portable; -Wpsabi only
// warns about the ABI of a function that is always inlined away.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"
typedef float vf __attribute__((vector_size(32), aligned(4)));

inline vf load8(const float* p) {
  vf v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}

inline void micro_kernel(Index kc, const float* __restrict a, const float* __restrict b,
                         float* __restrict acc) {
  static_assert(MR == 6 && NR == 16, "micro_kernel is unrolled for 6x16 tiles");
  vf c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
  for (Index k = 0; k < kc; ++k) {
    const float* __restrict ak = a + k * MR;
    const vf b0 = load8(b + k * NR);
    const vf b1 = load8(b + k * NR + 8);
    c00 += ak[0] * b0; c01 += ak[0] * b1;
    c10 += ak[1] * b0; c11 += ak[1] * b1;
    c20 += ak[2] * b0; c21 += ak[2] * b1;
    c30 += ak[3] * b0; c31 += ak[3] * b1;
    c40 += ak[4] * b0; c41 += ak[4] * b1;
    c50 += ak[5] * b0; c51 += ak[5] * b1;
  }
  const vf rows[MR][2] = {{c00, c01}, {c10, c11}, {c20, c21}, {c30, c31}, {c40, c41}, {c50, c51}};
  for (Index r = 0; r < MR; ++r) {
    __builtin_memcpy(acc + r * NR, &rows[r][0], sizeof(vf));
    __builtin_memcpy(acc + r * NR + 8, &rows[r][1], sizeof(vf));
  }
}
#pragma GCC diagnostic pop
#else
inline void micro_kernel(Index kc, const float* __restrict a, const float* __restrict b,
                         float* __restrict acc) {
  for (Index i = 0; i < MR * NR; ++i) acc[i] = 0.0f;
  for (Index k = 0; k < kc; ++k) {
    const float* __restrict ak = a + k * MR;
    const float* __restrict bk = b + k * NR;
    for (Index r = 0; r < MR; ++r) {
      const float av = ak[r];
      for (Index c = 0; c < NR; ++c) acc[r * NR + c] += av * bk[c];
    }
  }
}
#endif

/// C := beta * C (beta == 0 overwrites, so garbage/NaN inputs are erased).
void scale_c(Index M, Index N, float beta, float* C) {
  if (beta == 1.0f) return;
  parallel_for(M, [&](Index ib, Index ie) {
    for (Index i = ib; i < ie; ++i) {
      float* c = C + i * N;
      if (beta == 0.0f) {
        std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(N));
      } else {
        for (Index j = 0; j < N; ++j) c[j] *= beta;
      }
    }
  });
}

/// Forces a value to float storage precision: inhibits the compiler from
/// contracting the multiply that produced it into an FMA with a following
/// add (-ffp-contract=fast fuses across statements). The fused epilogue
/// needs this where the bias add directly follows the alpha scale: the
/// unfused lowering stores that product to C (rounding it) before the
/// epilogue pass reads it back, and the fused path must match those bits.
inline float force_rounded(float v) {
#if defined(__x86_64__) || defined(__i386__)
  __asm__("" : "+x"(v));
#elif defined(__aarch64__)
  __asm__("" : "+w"(v));
#elif defined(__GNUC__) || defined(__clang__)
  __asm__("" : "+m"(v));
#endif
  return v;
}

/// Writes one micro-tile strip of accumulators into C. `ep` is non-null only
/// on the last K panel: the per-element operation order (accumulate, += bias,
/// activation) matches apply_epilogue exactly, which is what keeps fused
/// results bit-identical to the unfused two-pass lowering.
inline void write_back(Index rows, Index cols, Index i, Index j, Index N, float alpha, float beta,
                       bool first_panel, const float* __restrict acc, float* __restrict C,
                       const Epilogue* ep) {
  for (Index r = 0; r < rows; ++r) {
    float* __restrict c = C + (i + r) * N + j;
    const float* __restrict av = acc + r * NR;
    if (ep == nullptr) {
      if (first_panel) {
        if (beta == 0.0f) {
          for (Index cc = 0; cc < cols; ++cc) c[cc] = alpha * av[cc];
        } else {
          for (Index cc = 0; cc < cols; ++cc) c[cc] = alpha * av[cc] + beta * c[cc];
        }
      } else {
        for (Index cc = 0; cc < cols; ++cc) c[cc] += alpha * av[cc];
      }
    } else {
      const bool has_bias = ep->bias != nullptr;
      const float b = has_bias ? ep->bias[i + r] : 0.0f;
      const Epilogue::Act act = ep->act;
      const float slope = ep->slope;
      for (Index cc = 0; cc < cols; ++cc) {
        float t;
        if (first_panel && beta == 0.0f) {
          t = alpha * av[cc];
          // A bare product followed by the bias add is the one spot the
          // compiler could fuse into an FMA; everywhere else the accumulate
          // already ends in an addition.
          if (has_bias) t = force_rounded(t);
        } else if (first_panel) {
          t = alpha * av[cc] + beta * c[cc];
        } else {
          t = c[cc] + alpha * av[cc];
        }
        if (has_bias) t += b;
        c[cc] = apply_act(t, act, slope);
      }
    }
  }
}

/// A full-matrix cached pack of op(A), in the pack_a_full layout.
struct CachedA {
  const float* data = nullptr;
  Index strips = 0;  ///< total M strips == (M + MR - 1) / MR
};

template <class PackA, class PackB>
void blocked_gemm(Index M, Index N, Index K, float alpha, float beta, float* __restrict C,
                  PackA pack_a_tile, PackB pack_b_tile, const Epilogue* ep,
                  const CachedA* cached) {
  if (M == 0 || N == 0) return;
  if (K == 0 || alpha == 0.0f) {
    scale_c(M, N, beta, C);
    if (ep != nullptr) apply_epilogue(M, N, C, *ep);
    return;
  }
  const Index row_tiles = (M + kRowTile - 1) / kRowTile;
  const Index col_tiles = (N + kColTile - 1) / kColTile;
  parallel_for_each(row_tiles * col_tiles, [&](Index tile) {
    const Index i0 = (tile / col_tiles) * kRowTile;
    const Index mt = std::min(kRowTile, M - i0);
    const Index j0 = (tile % col_tiles) * kColTile;
    const Index nt = std::min(kColTile, N - j0);
    const Index m_strips = (mt + MR - 1) / MR;
    const Index n_strips = (nt + NR - 1) / NR;

    WorkspaceScope ws;
    float* apack =
        cached == nullptr ? ws.alloc(static_cast<std::size_t>(m_strips * MR * kKC)) : nullptr;
    float* bpack = ws.alloc(static_cast<std::size_t>(n_strips * NR * kKC));
    alignas(64) float acc[MR * NR];

    for (Index k0 = 0; k0 < K; k0 += kKC) {
      const Index kc = std::min(kKC, K - k0);
      const bool first_panel = (k0 == 0);
      const Epilogue* panel_ep = (k0 + kc == K) ? ep : nullptr;
      const float* atile;
      if (cached != nullptr) {
        // kRowTile is a multiple of MR, so the tile's strips sit at global
        // strip indices i0/MR.. in the panel-major cached image.
        atile = cached->data + cached->strips * MR * k0 + (i0 / MR) * MR * kc;
      } else {
        pack_a_tile(i0, mt, k0, kc, apack);
        atile = apack;
      }
      pack_b_tile(j0, nt, k0, kc, bpack);
      for (Index sn = 0; sn < n_strips; ++sn) {
        const Index j = j0 + sn * NR;
        const Index cols = std::min(NR, j0 + nt - j);
        for (Index sm = 0; sm < m_strips; ++sm) {
          const Index i = i0 + sm * MR;
          const Index rows = std::min(MR, i0 + mt - i);
          micro_kernel(kc, atile + sm * MR * kc, bpack + sn * NR * kc, acc);
          write_back(rows, cols, i, j, N, alpha, beta, first_panel, acc, C, panel_ep);
        }
      }
    }
  });
}

class CpuOptBackend final : public ComputeBackend {
 public:
  const char* name() const override { return "cpu_opt"; }

  void sgemm(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
             float* C) const override {
    run(M, N, K, alpha, A, B, beta, C, nullptr);
  }

  void sgemm_at(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
                float* C) const override {
    run_at(M, N, K, alpha, A, B, beta, C, nullptr);
  }

  void sgemm_bt(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
                float* C) const override {
    run_bt(M, N, K, alpha, A, B, beta, C, nullptr);
  }

  void sgemm_ex(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
                float* C, const GemmArgs& args) const override {
    run(M, N, K, alpha, A, B, beta, C, &args);
  }

  void sgemm_at_ex(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                   float beta, float* C, const GemmArgs& args) const override {
    run_at(M, N, K, alpha, A, B, beta, C, &args);
  }

  void sgemm_bt_ex(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                   float beta, float* C, const GemmArgs& args) const override {
    run_bt(M, N, K, alpha, A, B, beta, C, &args);
  }

 private:
  template <class PackA, class PackB>
  static void dispatch(Index M, Index N, Index K, float alpha, const float* A, float beta,
                       float* C, PackA packA, PackB packB, const GemmArgs* args, int variant) {
    const Epilogue* ep =
        (args != nullptr && args->epilogue.enabled()) ? &args->epilogue : nullptr;
    if (args != nullptr && args->cache_weights && M > 0 && K > 0 && alpha != 0.0f) {
      const Index strips = (M + MR - 1) / MR;
      const PackedWeightCache::Key key{A, args->weight_version, variant, M, K};
      // The shared_ptr pins the pack for this call even if the entry is
      // evicted or invalidated mid-GEMM.
      std::shared_ptr<const PackedWeights> pinned = PackedWeightCache::instance().get_or_pack(
          key, A, M * K, static_cast<std::size_t>(strips * MR * K),
          [&](float* dst) { pack_a_full(M, K, packA, dst); });
      const CachedA cached{pinned->data.data(), strips};
      blocked_gemm(M, N, K, alpha, beta, C, packA, packB, ep, &cached);
      return;
    }
    blocked_gemm(M, N, K, alpha, beta, C, packA, packB, ep, nullptr);
  }

  static void run(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                  float beta, float* C, const GemmArgs* args) {
    dispatch(
        M, N, K, alpha, A, beta, C,
        [A, K](Index i0, Index mt, Index k0, Index kc, float* d) {
          pack_a_rows(A + i0 * K + k0, K, mt, kc, d);
        },
        [B, N](Index j0, Index nt, Index k0, Index kc, float* d) {
          pack_b_rows(B + k0 * N + j0, N, nt, kc, d);
        },
        args, kVariantANormal);
  }

  static void run_at(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                     float beta, float* C, const GemmArgs* args) {
    // A stored KxM: op(A)(i,k) = A[k*M + i].
    dispatch(
        M, N, K, alpha, A, beta, C,
        [A, M](Index i0, Index mt, Index k0, Index kc, float* d) {
          pack_a_trans(A + k0 * M + i0, M, mt, kc, d);
        },
        [B, N](Index j0, Index nt, Index k0, Index kc, float* d) {
          pack_b_rows(B + k0 * N + j0, N, nt, kc, d);
        },
        args, kVariantATrans);
  }

  static void run_bt(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                     float beta, float* C, const GemmArgs* args) {
    // B stored NxK: op(B)(k,j) = B[j*K + k].
    dispatch(
        M, N, K, alpha, A, beta, C,
        [A, K](Index i0, Index mt, Index k0, Index kc, float* d) {
          pack_a_rows(A + i0 * K + k0, K, mt, kc, d);
        },
        [B, K](Index j0, Index nt, Index k0, Index kc, float* d) {
          pack_b_trans(B + j0 * K + k0, K, nt, kc, d);
        },
        args, kVariantANormal);
  }
};

}  // namespace

std::unique_ptr<ComputeBackend> make_cpu_opt_backend() {
  return std::make_unique<CpuOptBackend>();
}

}  // namespace paintplace::backend
