// "cpu_opt" backend: BLIS-style packed, register-blocked GEMM.
//
// All three variants run through one blocked driver parameterised on element
// accessors for op(A) and op(B) — the transposed cases differ only in how
// the pack routines gather, so the hot macro/micro-kernel is shared.
//
// Tiling (all compile-time constants):
//   * The C plane is cut into kRowTile x kColTile task tiles; tasks are
//     independent and fan out over common/parallel. Each C element belongs
//     to exactly one task and its K loop runs in one fixed order, so results
//     are bit-identical for every thread count.
//   * Inside a task, K is blocked by kKC. Per K panel the task packs its
//     A block into MR-row strips (k-major) and its B block into NR-column
//     strips, zero-padded to full strips, into the thread's Workspace —
//     steady state does no heap allocation.
//   * The micro-kernel accumulates an MR x NR tile of C in registers over
//     the whole K panel: MR*NR independent FMA chains that vectorise across
//     the NR lanes. Lane position never feeds back into the arithmetic, so
//     a column's values do not depend on where in the matrix it sits — this
//     is what keeps batched conv lowering bit-exact vs per-sample (a sample's
//     columns land at different offsets in the wide batched GEMM).
//
// Build note: CMake compiles this file with -march=native when available
// (PAINTPLACE_NATIVE_KERNEL, default ON) so the micro-kernel vectorises to
// the widest FMA the build host has; everything here is plain C++ and also
// compiles (slower) without it.
#include <algorithm>
#include <cstring>

#include "backend/backend.h"
#include "backend/workspace.h"
#include "common/parallel.h"

namespace paintplace::backend {
namespace {

constexpr Index MR = 6;   ///< micro-kernel rows (accumulator rows)
constexpr Index NR = 16;  ///< micro-kernel columns (one or two SIMD vectors)
constexpr Index kKC = 256;       ///< K panel — packed strips stay L1/L2 resident
constexpr Index kRowTile = 96;   ///< task tile rows (multiple of MR)
constexpr Index kColTile = 512;  ///< task tile columns (multiple of NR)

static_assert(kRowTile % MR == 0 && kColTile % NR == 0);

/// Packs rows [0,mt) x [0,kc) of op(A) into MR-row strips, k-major within a
/// strip, rows zero-padded to a full strip. `a(i,k)` reads op(A) at the
/// tile-local coordinate.
template <class GetA>
void pack_a(Index mt, Index kc, GetA a, float* __restrict dst) {
  const Index strips = (mt + MR - 1) / MR;
  for (Index s = 0; s < strips; ++s) {
    const Index i0 = s * MR;
    const Index rows = std::min(MR, mt - i0);
    float* __restrict d = dst + s * MR * kc;
    if (rows == MR) {
      for (Index k = 0; k < kc; ++k) {
        for (Index r = 0; r < MR; ++r) d[k * MR + r] = a(i0 + r, k);
      }
    } else {
      for (Index k = 0; k < kc; ++k) {
        for (Index r = 0; r < rows; ++r) d[k * MR + r] = a(i0 + r, k);
        for (Index r = rows; r < MR; ++r) d[k * MR + r] = 0.0f;
      }
    }
  }
}

/// Packs columns [0,nt) x rows [0,kc) of op(B) into NR-column strips,
/// k-major within a strip, columns zero-padded to a full strip.
template <class GetB>
void pack_b(Index nt, Index kc, GetB b, float* __restrict dst) {
  const Index strips = (nt + NR - 1) / NR;
  for (Index s = 0; s < strips; ++s) {
    const Index j0 = s * NR;
    const Index cols = std::min(NR, nt - j0);
    float* __restrict d = dst + s * NR * kc;
    if (cols == NR) {
      for (Index k = 0; k < kc; ++k) {
        for (Index c = 0; c < NR; ++c) d[k * NR + c] = b(k, j0 + c);
      }
    } else {
      for (Index k = 0; k < kc; ++k) {
        for (Index c = 0; c < cols; ++c) d[k * NR + c] = b(k, j0 + c);
        for (Index c = cols; c < NR; ++c) d[k * NR + c] = 0.0f;
      }
    }
  }
}

/// acc(MR x NR) = sum_k a_strip(:,k) * b_strip(k,:).
#if defined(__GNUC__) || defined(__clang__)
// The accumulators are spelled as explicit vector-extension registers: a
// plain scalar loop here gets outer-loop-vectorised by GCC with every
// accumulator spilled to the stack, which is ~40x slower than keeping the
// 12 row-vectors live across the K loop. vector_size(32) lowers to two SSE
// ops per update when AVX is off, so the file stays portable; -Wpsabi only
// warns about the ABI of a function that is always inlined away.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"
typedef float vf __attribute__((vector_size(32), aligned(4)));

inline vf load8(const float* p) {
  vf v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}

inline void micro_kernel(Index kc, const float* __restrict a, const float* __restrict b,
                         float* __restrict acc) {
  static_assert(MR == 6 && NR == 16, "micro_kernel is unrolled for 6x16 tiles");
  vf c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
  for (Index k = 0; k < kc; ++k) {
    const float* __restrict ak = a + k * MR;
    const vf b0 = load8(b + k * NR);
    const vf b1 = load8(b + k * NR + 8);
    c00 += ak[0] * b0; c01 += ak[0] * b1;
    c10 += ak[1] * b0; c11 += ak[1] * b1;
    c20 += ak[2] * b0; c21 += ak[2] * b1;
    c30 += ak[3] * b0; c31 += ak[3] * b1;
    c40 += ak[4] * b0; c41 += ak[4] * b1;
    c50 += ak[5] * b0; c51 += ak[5] * b1;
  }
  const vf rows[MR][2] = {{c00, c01}, {c10, c11}, {c20, c21}, {c30, c31}, {c40, c41}, {c50, c51}};
  for (Index r = 0; r < MR; ++r) {
    __builtin_memcpy(acc + r * NR, &rows[r][0], sizeof(vf));
    __builtin_memcpy(acc + r * NR + 8, &rows[r][1], sizeof(vf));
  }
}
#pragma GCC diagnostic pop
#else
inline void micro_kernel(Index kc, const float* __restrict a, const float* __restrict b,
                         float* __restrict acc) {
  for (Index i = 0; i < MR * NR; ++i) acc[i] = 0.0f;
  for (Index k = 0; k < kc; ++k) {
    const float* __restrict ak = a + k * MR;
    const float* __restrict bk = b + k * NR;
    for (Index r = 0; r < MR; ++r) {
      const float av = ak[r];
      for (Index c = 0; c < NR; ++c) acc[r * NR + c] += av * bk[c];
    }
  }
}
#endif

/// C := beta * C (beta == 0 overwrites, so garbage/NaN inputs are erased).
void scale_c(Index M, Index N, float beta, float* C) {
  if (beta == 1.0f) return;
  parallel_for(M, [&](Index ib, Index ie) {
    for (Index i = ib; i < ie; ++i) {
      float* c = C + i * N;
      if (beta == 0.0f) {
        std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(N));
      } else {
        for (Index j = 0; j < N; ++j) c[j] *= beta;
      }
    }
  });
}

template <class GetA, class GetB>
void blocked_gemm(Index M, Index N, Index K, float alpha, GetA a, GetB b, float beta,
                  float* __restrict C) {
  if (M == 0 || N == 0) return;
  if (K == 0 || alpha == 0.0f) {
    scale_c(M, N, beta, C);
    return;
  }
  const Index row_tiles = (M + kRowTile - 1) / kRowTile;
  const Index col_tiles = (N + kColTile - 1) / kColTile;
  parallel_for_each(row_tiles * col_tiles, [&](Index tile) {
    const Index i0 = (tile / col_tiles) * kRowTile;
    const Index mt = std::min(kRowTile, M - i0);
    const Index j0 = (tile % col_tiles) * kColTile;
    const Index nt = std::min(kColTile, N - j0);
    const Index m_strips = (mt + MR - 1) / MR;
    const Index n_strips = (nt + NR - 1) / NR;

    WorkspaceScope ws;
    float* apack = ws.alloc(static_cast<std::size_t>(m_strips * MR * kKC));
    float* bpack = ws.alloc(static_cast<std::size_t>(n_strips * NR * kKC));
    alignas(64) float acc[MR * NR];

    for (Index k0 = 0; k0 < K; k0 += kKC) {
      const Index kc = std::min(kKC, K - k0);
      const bool first_panel = (k0 == 0);
      pack_a(mt, kc, [&](Index i, Index k) { return a(i0 + i, k0 + k); }, apack);
      pack_b(nt, kc, [&](Index k, Index j) { return b(k0 + k, j0 + j); }, bpack);
      for (Index sn = 0; sn < n_strips; ++sn) {
        const Index j = j0 + sn * NR;
        const Index cols = std::min(NR, j0 + nt - j);
        for (Index sm = 0; sm < m_strips; ++sm) {
          const Index i = i0 + sm * MR;
          const Index rows = std::min(MR, i0 + mt - i);
          micro_kernel(kc, apack + sm * MR * kc, bpack + sn * NR * kc, acc);
          for (Index r = 0; r < rows; ++r) {
            float* __restrict c = C + (i + r) * N + j;
            const float* __restrict av = acc + r * NR;
            if (first_panel) {
              if (beta == 0.0f) {
                for (Index cc = 0; cc < cols; ++cc) c[cc] = alpha * av[cc];
              } else {
                for (Index cc = 0; cc < cols; ++cc) c[cc] = alpha * av[cc] + beta * c[cc];
              }
            } else {
              for (Index cc = 0; cc < cols; ++cc) c[cc] += alpha * av[cc];
            }
          }
        }
      }
    }
  });
}

class CpuOptBackend final : public ComputeBackend {
 public:
  const char* name() const override { return "cpu_opt"; }

  void sgemm(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
             float* C) const override {
    blocked_gemm(
        M, N, K, alpha, [A, K](Index i, Index k) { return A[i * K + k]; },
        [B, N](Index k, Index j) { return B[k * N + j]; }, beta, C);
  }

  void sgemm_at(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
                float* C) const override {
    // A stored KxM: op(A)(i,k) = A[k*M + i]. The gather is strided but runs
    // once per K panel; the macro-kernel only ever sees packed strips.
    blocked_gemm(
        M, N, K, alpha, [A, M](Index i, Index k) { return A[k * M + i]; },
        [B, N](Index k, Index j) { return B[k * N + j]; }, beta, C);
  }

  void sgemm_bt(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
                float* C) const override {
    // B stored NxK: op(B)(k,j) = B[j*K + k].
    blocked_gemm(
        M, N, K, alpha, [A, K](Index i, Index k) { return A[i * K + k]; },
        [B, K](Index k, Index j) { return B[j * K + k]; }, beta, C);
  }
};

}  // namespace

std::unique_ptr<ComputeBackend> make_cpu_opt_backend() {
  return std::make_unique<CpuOptBackend>();
}

}  // namespace paintplace::backend
