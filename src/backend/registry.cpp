#include "backend/backend.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>

namespace paintplace::backend {
namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ComputeBackend>> backends;
  std::atomic<ComputeBackend*> active{nullptr};

  ComputeBackend* find_locked(const std::string& name) {
    for (auto& b : backends) {
      if (name == b->name()) return b.get();
    }
    return nullptr;
  }
};

[[noreturn]] void throw_unknown(const Registry& reg, const std::string& name, const char* source) {
  std::ostringstream os;
  os << "unknown compute backend \"" << name << "\" (from " << source << "); available:";
  for (const auto& b : reg.backends) os << " " << b->name();
  throw CheckError(os.str());
}

// Built lazily on first use (no static-init registrar objects: this library
// links statically and the linker would be free to drop them). Initialisation
// failure — an unknown PAINTPLACE_BACKEND value — throws, and the next call
// retries per the magic-static contract.
Registry& registry() {
  static Registry* reg = [] {
    auto* r = new Registry;
    r->backends.push_back(make_reference_backend());
    r->backends.push_back(make_cpu_opt_backend());
    const char* env = std::getenv(kBackendEnvVar);
    const std::string name = (env != nullptr && env[0] != '\0') ? env : kDefaultBackendName;
    ComputeBackend* chosen = r->find_locked(name);
    if (chosen == nullptr) throw_unknown(*r, name, kBackendEnvVar);
    r->active.store(chosen, std::memory_order_release);
    return r;
  }();
  return *reg;
}

}  // namespace

ComputeBackend& active_backend() {
  return *registry().active.load(std::memory_order_acquire);
}

void set_active_backend(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  ComputeBackend* chosen = reg.find_locked(name);
  if (chosen == nullptr) throw_unknown(reg, name, "set_active_backend");
  reg.active.store(chosen, std::memory_order_release);
}

std::vector<std::string> backend_names() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.backends.size());
  for (const auto& b : reg.backends) names.emplace_back(b->name());
  return names;
}

ComputeBackend* find_backend(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.find_locked(name);
}

void register_backend(std::unique_ptr<ComputeBackend> backend) {
  PP_CHECK(backend != nullptr);
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  PP_CHECK_MSG(reg.find_locked(backend->name()) == nullptr,
               "compute backend \"" << backend->name() << "\" already registered");
  reg.backends.push_back(std::move(backend));
}

ScopedBackend::ScopedBackend(const std::string& name) : prev_(active_backend().name()) {
  set_active_backend(name);
}

ScopedBackend::~ScopedBackend() { set_active_backend(prev_); }

}  // namespace paintplace::backend
