// Dataset builder: reproduces the paper's data generation (Sec. 5,
// "Datasets") — sweep the placer options {seed, alpha_t, inner_num,
// place_algorithm}, route every placement with default router settings, and
// render (img_place ⊕ λ·img_connect, img_route) pairs.
#pragma once

#include <vector>

#include "data/sample.h"
#include "fpga/arch.h"
#include "fpga/netlist.h"
#include "img/geometry.h"
#include "img/render.h"
#include "route/router.h"

namespace paintplace::data {

struct SweepConfig {
  Index num_placements = 24;  ///< paper: 200 per design (#P column)
  std::vector<double> alpha_ts = {0.8, 0.9, 0.95};
  std::vector<double> inner_nums = {0.33, 1.0, 2.0};
  std::vector<place::PlaceAlgorithm> algorithms = {place::PlaceAlgorithm::kAnnealing,
                                                   place::PlaceAlgorithm::kGreedy};
  std::uint64_t base_seed = 1;

  /// Option combination for the i-th placement of the sweep.
  place::PlacerOptions options_at(Index i) const;
};

struct DatasetConfig {
  Index image_width = 64;          ///< model resolution w (paper: 256)
  Index render_target_width = 256; ///< canvas bound before resizing to w
  double lambda_connect = 0.1;     ///< λ weighting of the connectivity channel
  SweepConfig sweep;
  route::RouterOptions router;
};

struct Dataset {
  std::string design;
  DatasetConfig config;
  std::vector<Sample> samples;
};

/// Renders the model input tensor for a placement: RGB img_place stacked
/// with λ·img_connect, resized to width x width. Exposed for the live
/// forecasting application, which predicts on placements mid-anneal.
nn::Tensor make_input(const place::Placement& placement, const img::PixelGeometry& geom,
                      Index width, double lambda_connect);

/// Grayscale variant (Sec. 5.2): 1-channel img_place + λ·img_connect.
nn::Tensor make_input_grayscale(const place::Placement& placement,
                                const img::PixelGeometry& geom, Index width,
                                double lambda_connect);

/// Renders the ground-truth tensor from a routed congestion map.
nn::Tensor make_target(const place::Placement& placement, const route::CongestionMap& congestion,
                       const img::PixelGeometry& geom, Index width);

/// Runs the full sweep for one design. Placements are placed/routed in
/// parallel across the worker pool; results are deterministic given the
/// config.
Dataset build_dataset(const fpga::Netlist& packed, const fpga::Arch& arch,
                      const DatasetConfig& config);

}  // namespace paintplace::data
