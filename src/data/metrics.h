// Evaluation metrics of Section 5.1:
//   * per-pixel accuracy between generated and ground-truth images
//     (Acc.1 / Acc.2 of Table 2);
//   * Top-10 accuracy for retrieving the min-congestion placements of a
//     test set from predicted heat maps.
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace paintplace::data {

using paintplace::Index;

/// Tolerance defining a "correct" pixel: max-channel absolute error within
/// 16 8-bit levels. The paper does not publish its exact threshold; this
/// constant is the repo-wide definition (see DESIGN.md).
inline constexpr float kPixelTolerance = 16.0f / 255.0f;

/// Fraction of pixels whose max-channel absolute difference is within
/// `tolerance`. Tensors must be (1,C,H,W) with matching shapes.
double per_pixel_accuracy(const nn::Tensor& generated, const nn::Tensor& truth,
                          float tolerance = kPixelTolerance);

/// Top-k retrieval accuracy: |{k lowest predicted} ∩ {k lowest true}| / k.
/// `predicted`/`truth` are congestion scores per placement (lower = less
/// congested). Paper metric with k = 10 (Table 2 "Top10").
double topk_min_overlap(const std::vector<double>& predicted, const std::vector<double>& truth,
                        Index k);

/// Indices of the k smallest scores, ascending by score (ties broken by
/// index for determinism).
std::vector<Index> k_smallest_indices(const std::vector<double>& scores, Index k);

/// Spearman rank correlation between two score vectors (used by tests to
/// check that predicted congestion orders placements like the truth).
double spearman_rank_correlation(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace paintplace::data
