// A training/evaluation sample: the paper's (x, truth) image pair plus the
// provenance needed by the evaluation harnesses.
#pragma once

#include <string>

#include "nn/tensor.h"
#include "place/sa_placer.h"

namespace paintplace::data {

using paintplace::Index;

struct SampleMeta {
  std::string design;
  place::PlacerOptions placer_options;
  double placement_cost = 0.0;        ///< final weighted HPWL
  double true_total_utilization = 0;  ///< sum of channel utilizations (router ground truth)
  double rudy_total = 0.0;            ///< RUDY estimate (classical baseline, place::RudyMap)
  double route_seconds = 0.0;         ///< routing wall time (Sec. 5.1 speedup)
  bool route_success = false;
  Index route_iterations = 0;
};

struct Sample {
  /// stack(img_place, lambda * img_connect): (1, 4, w, w), values in [0,1]
  /// (the connectivity channel in [0, lambda]).
  nn::Tensor input;
  /// img_route heat map: (1, 3, w, w), values in [0,1].
  nn::Tensor target;
  SampleMeta meta;
};

}  // namespace paintplace::data
