#include "data/dataset.h"

#include "common/parallel.h"
#include "place/rudy.h"

namespace paintplace::data {

place::PlacerOptions SweepConfig::options_at(Index i) const {
  PP_CHECK(!alpha_ts.empty() && !inner_nums.empty() && !algorithms.empty());
  place::PlacerOptions opt;
  opt.seed = base_seed + static_cast<std::uint64_t>(i);
  opt.alpha_t = alpha_ts[static_cast<std::size_t>(i) % alpha_ts.size()];
  opt.inner_num =
      inner_nums[static_cast<std::size_t>(i / static_cast<Index>(alpha_ts.size())) %
                 inner_nums.size()];
  opt.algorithm = algorithms[static_cast<std::size_t>(
                                 i / static_cast<Index>(alpha_ts.size() * inner_nums.size())) %
                             algorithms.size()];
  return opt;
}

nn::Tensor make_input(const place::Placement& placement, const img::PixelGeometry& geom,
                      Index width, double lambda_connect) {
  img::Image place_img = img::render_placement(placement, geom);
  img::Image connect_img = img::render_connectivity(placement, geom);
  place_img = img::resize_bilinear(place_img, width, width);
  connect_img = img::resize_bilinear(connect_img, width, width);

  nn::Tensor x(nn::Shape{1, 4, width, width});
  const nn::Tensor pt = place_img.to_tensor();
  for (Index c = 0; c < 3; ++c) {
    for (Index y = 0; y < width; ++y) {
      for (Index xx = 0; xx < width; ++xx) x.at(0, c, y, xx) = pt.at(0, c, y, xx);
    }
  }
  const float lambda = static_cast<float>(lambda_connect);
  for (Index y = 0; y < width; ++y) {
    for (Index xx = 0; xx < width; ++xx) {
      x.at(0, 3, y, xx) = lambda * connect_img.at(xx, y, 0);
    }
  }
  return x;
}

nn::Tensor make_input_grayscale(const place::Placement& placement,
                                const img::PixelGeometry& geom, Index width,
                                double lambda_connect) {
  img::Image place_img = img::to_grayscale(img::render_placement(placement, geom));
  img::Image connect_img = img::render_connectivity(placement, geom);
  place_img = img::resize_bilinear(place_img, width, width);
  connect_img = img::resize_bilinear(connect_img, width, width);

  nn::Tensor x(nn::Shape{1, 2, width, width});
  const float lambda = static_cast<float>(lambda_connect);
  for (Index y = 0; y < width; ++y) {
    for (Index xx = 0; xx < width; ++xx) {
      x.at(0, 0, y, xx) = place_img.at(xx, y, 0);
      x.at(0, 1, y, xx) = lambda * connect_img.at(xx, y, 0);
    }
  }
  return x;
}

nn::Tensor make_target(const place::Placement& placement, const route::CongestionMap& congestion,
                       const img::PixelGeometry& geom, Index width) {
  img::Image heat = img::render_route_heatmap(placement, congestion, geom);
  heat = img::resize_bilinear(heat, width, width);
  return heat.to_tensor();
}

Dataset build_dataset(const fpga::Netlist& packed, const fpga::Arch& arch,
                      const DatasetConfig& config) {
  PP_CHECK_MSG(packed.is_packed(), "dataset needs a packed netlist");
  PP_CHECK(config.sweep.num_placements >= 1);
  const img::PixelGeometry geom(arch, config.render_target_width);

  Dataset ds;
  ds.design = packed.name();
  ds.config = config;
  ds.samples.resize(static_cast<std::size_t>(config.sweep.num_placements));

  parallel_for_each(config.sweep.num_placements, [&](Index i) {
    const place::PlacerOptions options = config.sweep.options_at(i);
    place::SaPlacer placer(arch, packed, options);
    const place::Placement placement = placer.place();

    route::ChannelGraph graph(arch);
    route::CongestionMap congestion(graph);
    route::PathFinderRouter router(graph, config.router);
    const route::RouteResult rr = router.route(placement, congestion);

    Sample& s = ds.samples[static_cast<std::size_t>(i)];
    s.input = make_input(placement, geom, config.image_width, config.lambda_connect);
    s.target = make_target(placement, congestion, geom, config.image_width);
    s.meta.design = packed.name();
    s.meta.placer_options = options;
    s.meta.placement_cost = placer.report().final_cost;
    s.meta.true_total_utilization = congestion.total_utilization();
    s.meta.rudy_total = place::RudyMap(placement).total();
    s.meta.route_seconds = rr.wall_seconds;
    s.meta.route_success = rr.success;
    s.meta.route_iterations = rr.iterations;
  });
  return ds;
}

}  // namespace paintplace::data
