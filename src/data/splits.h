// Train/test splits of Section 5.1:
//   strategy 1 — leave-one-design-out: train on every design except the
//     test design (Acc.1: inference on unseen designs);
//   strategy 2 — transfer learning: additionally fine-tune on ten image
//     pairs from the test design (Acc.2).
#pragma once

#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace paintplace::data {

struct Split {
  std::vector<const Sample*> train;
  std::vector<const Sample*> test;
  std::vector<const Sample*> fine_tune;  ///< strategy-2 pairs (subset of the test design)
};

/// Builds the leave-one-design-out split: all samples of `datasets` except
/// `test_design` go to train; the test design's samples are split into
/// `fine_tune_pairs` fine-tuning samples (chosen deterministically from
/// `seed`) and the remaining test samples.
Split leave_one_design_out(const std::vector<Dataset>& datasets, const std::string& test_design,
                           Index fine_tune_pairs = 10, std::uint64_t seed = 99);

/// Random held-out split for the training pipeline: shuffles `samples`
/// deterministically from `seed` and moves `val_fraction` of them (at least
/// one when the fraction is > 0 and at most n-1, so neither side is empty)
/// into a validation set. Returned as {train, val}.
std::pair<std::vector<const Sample*>, std::vector<const Sample*>> train_val_split(
    const std::vector<const Sample*>& samples, double val_fraction, std::uint64_t seed = 99);

}  // namespace paintplace::data
