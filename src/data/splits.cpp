#include "data/splits.h"

#include <algorithm>

namespace paintplace::data {

Split leave_one_design_out(const std::vector<Dataset>& datasets, const std::string& test_design,
                           Index fine_tune_pairs, std::uint64_t seed) {
  PP_CHECK(fine_tune_pairs >= 0);
  Split split;
  const Dataset* test_ds = nullptr;
  for (const Dataset& ds : datasets) {
    if (ds.design == test_design) {
      PP_CHECK_MSG(test_ds == nullptr, "duplicate dataset for design " << test_design);
      test_ds = &ds;
      continue;
    }
    for (const Sample& s : ds.samples) split.train.push_back(&s);
  }
  PP_CHECK_MSG(test_ds != nullptr, "no dataset named " << test_design);
  PP_CHECK_MSG(fine_tune_pairs < static_cast<Index>(test_ds->samples.size()),
               "fine-tune set would swallow the whole test design");

  std::vector<Index> idx(test_ds->samples.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<Index>(i);
  Rng rng(seed);
  std::shuffle(idx.begin(), idx.end(), rng.engine());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const Sample* s = &test_ds->samples[static_cast<std::size_t>(idx[i])];
    if (static_cast<Index>(i) < fine_tune_pairs) {
      split.fine_tune.push_back(s);
    } else {
      split.test.push_back(s);
    }
  }
  return split;
}

}  // namespace paintplace::data
