#include "data/splits.h"

#include <algorithm>

namespace paintplace::data {

Split leave_one_design_out(const std::vector<Dataset>& datasets, const std::string& test_design,
                           Index fine_tune_pairs, std::uint64_t seed) {
  PP_CHECK(fine_tune_pairs >= 0);
  Split split;
  const Dataset* test_ds = nullptr;
  for (const Dataset& ds : datasets) {
    if (ds.design == test_design) {
      PP_CHECK_MSG(test_ds == nullptr, "duplicate dataset for design " << test_design);
      test_ds = &ds;
      continue;
    }
    for (const Sample& s : ds.samples) split.train.push_back(&s);
  }
  PP_CHECK_MSG(test_ds != nullptr, "no dataset named " << test_design);
  PP_CHECK_MSG(fine_tune_pairs < static_cast<Index>(test_ds->samples.size()),
               "fine-tune set would swallow the whole test design");

  std::vector<Index> idx(test_ds->samples.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<Index>(i);
  Rng rng(seed);
  std::shuffle(idx.begin(), idx.end(), rng.engine());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const Sample* s = &test_ds->samples[static_cast<std::size_t>(idx[i])];
    if (static_cast<Index>(i) < fine_tune_pairs) {
      split.fine_tune.push_back(s);
    } else {
      split.test.push_back(s);
    }
  }
  return split;
}

std::pair<std::vector<const Sample*>, std::vector<const Sample*>> train_val_split(
    const std::vector<const Sample*>& samples, double val_fraction, std::uint64_t seed) {
  PP_CHECK_MSG(val_fraction >= 0.0 && val_fraction < 1.0,
               "val_fraction must be in [0, 1), got " << val_fraction);
  const Index n = static_cast<Index>(samples.size());
  PP_CHECK_MSG(n >= 1, "train_val_split needs at least one sample");
  Index n_val = static_cast<Index>(static_cast<double>(n) * val_fraction + 0.5);
  if (val_fraction > 0.0 && n_val == 0) n_val = 1;
  if (n_val >= n) n_val = n - 1;  // never empty the training side

  std::vector<const Sample*> order = samples;
  Rng rng(seed);
  std::shuffle(order.begin(), order.end(), rng.engine());
  std::vector<const Sample*> val(order.begin(), order.begin() + n_val);
  std::vector<const Sample*> train(order.begin() + n_val, order.end());
  return {std::move(train), std::move(val)};
}

}  // namespace paintplace::data
