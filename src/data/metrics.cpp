#include "data/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace paintplace::data {

double per_pixel_accuracy(const nn::Tensor& generated, const nn::Tensor& truth, float tolerance) {
  PP_CHECK_MSG(generated.shape() == truth.shape(), "accuracy shape mismatch");
  PP_CHECK_MSG(generated.rank() == 4, "accuracy expects (N,C,H,W)");
  const Index N = generated.dim(0), C = generated.dim(1), H = generated.dim(2),
              W = generated.dim(3);
  Index correct = 0;
  for (Index n = 0; n < N; ++n) {
    for (Index y = 0; y < H; ++y) {
      for (Index x = 0; x < W; ++x) {
        float max_err = 0.0f;
        for (Index c = 0; c < C; ++c) {
          max_err = std::max(max_err, std::fabs(generated.at(n, c, y, x) - truth.at(n, c, y, x)));
        }
        if (max_err <= tolerance) correct += 1;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(N * H * W);
}

std::vector<Index> k_smallest_indices(const std::vector<double>& scores, Index k) {
  PP_CHECK(k >= 1 && k <= static_cast<Index>(scores.size()));
  std::vector<Index> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](Index a, Index b) {
    const double sa = scores[static_cast<std::size_t>(a)];
    const double sb = scores[static_cast<std::size_t>(b)];
    return sa != sb ? sa < sb : a < b;
  });
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

double topk_min_overlap(const std::vector<double>& predicted, const std::vector<double>& truth,
                        Index k) {
  PP_CHECK_MSG(predicted.size() == truth.size(), "score vector size mismatch");
  const std::vector<Index> p = k_smallest_indices(predicted, k);
  const std::vector<Index> t = k_smallest_indices(truth, k);
  Index hits = 0;
  for (Index i : p) {
    if (std::find(t.begin(), t.end(), i) != t.end()) hits += 1;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

namespace {

std::vector<double> ranks_of(const std::vector<double>& v) {
  std::vector<Index> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](Index a, Index b) {
    return v[static_cast<std::size_t>(a)] < v[static_cast<std::size_t>(b)];
  });
  std::vector<double> ranks(v.size());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    ranks[static_cast<std::size_t>(idx[r])] = static_cast<double>(r);
  }
  return ranks;
}

}  // namespace

double spearman_rank_correlation(const std::vector<double>& a, const std::vector<double>& b) {
  PP_CHECK(a.size() == b.size() && a.size() >= 2);
  const std::vector<double> ra = ranks_of(a), rb = ranks_of(b);
  const double n = static_cast<double>(a.size());
  const double mean = (n - 1.0) / 2.0;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (ra[i] - mean) * (rb[i] - mean);
    var_a += (ra[i] - mean) * (ra[i] - mean);
    var_b += (rb[i] - mean) * (rb[i] - mean);
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace paintplace::data
