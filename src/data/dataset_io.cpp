#include "data/dataset_io.h"

#include <cstring>
#include <fstream>

namespace paintplace::data {
namespace {

constexpr char kMagic[4] = {'P', 'P', 'D', 'S'};
constexpr std::uint32_t kVersion = 2;

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  PP_CHECK_MSG(in.good(), "dataset file truncated");
  return v;
}
void write_f64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
double read_f64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  PP_CHECK_MSG(in.good(), "dataset file truncated");
  return v;
}
void write_string(std::ostream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}
std::string read_string(std::istream& in) {
  const std::uint64_t len = read_u64(in);
  PP_CHECK_MSG(len < (1u << 20), "implausible string length in dataset file");
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  PP_CHECK_MSG(in.good(), "dataset file truncated");
  return s;
}
void write_tensor(std::ostream& out, const nn::Tensor& t) {
  write_u64(out, static_cast<std::uint64_t>(t.rank()));
  for (Index d = 0; d < t.rank(); ++d) write_u64(out, static_cast<std::uint64_t>(t.dim(d)));
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(sizeof(float)) *
                static_cast<std::streamsize>(t.numel()));
}
nn::Tensor read_tensor(std::istream& in) {
  const std::uint64_t rank = read_u64(in);
  PP_CHECK_MSG(rank <= 8, "implausible tensor rank in dataset file");
  std::vector<Index> dims;
  for (std::uint64_t d = 0; d < rank; ++d) dims.push_back(static_cast<Index>(read_u64(in)));
  nn::Tensor t((nn::Shape(dims)));
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(sizeof(float)) *
              static_cast<std::streamsize>(t.numel()));
  PP_CHECK_MSG(in.good(), "dataset file truncated");
  return t;
}

}  // namespace

void save_dataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  PP_CHECK_MSG(out.is_open(), "cannot open " << path << " for writing");
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  write_string(out, dataset.design);
  write_u64(out, static_cast<std::uint64_t>(dataset.config.image_width));
  write_f64(out, dataset.config.lambda_connect);
  write_u64(out, dataset.samples.size());
  for (const Sample& s : dataset.samples) {
    write_tensor(out, s.input);
    write_tensor(out, s.target);
    write_string(out, s.meta.design);
    write_u64(out, s.meta.placer_options.seed);
    write_f64(out, s.meta.placer_options.alpha_t);
    write_f64(out, s.meta.placer_options.inner_num);
    write_u64(out, static_cast<std::uint64_t>(s.meta.placer_options.algorithm));
    write_f64(out, s.meta.placement_cost);
    write_f64(out, s.meta.true_total_utilization);
    write_f64(out, s.meta.rudy_total);
    write_f64(out, s.meta.route_seconds);
    write_u64(out, s.meta.route_success ? 1 : 0);
    write_u64(out, static_cast<std::uint64_t>(s.meta.route_iterations));
  }
  PP_CHECK_MSG(out.good(), "dataset write failed");
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PP_CHECK_MSG(in.is_open(), "cannot open " << path);
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  PP_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "not a paintplace dataset file");
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  PP_CHECK_MSG(in.good() && version == kVersion, "unsupported dataset version " << version);

  Dataset ds;
  ds.design = read_string(in);
  ds.config.image_width = static_cast<Index>(read_u64(in));
  ds.config.lambda_connect = read_f64(in);
  const std::uint64_t count = read_u64(in);
  ds.samples.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Sample s;
    s.input = read_tensor(in);
    s.target = read_tensor(in);
    s.meta.design = read_string(in);
    s.meta.placer_options.seed = read_u64(in);
    s.meta.placer_options.alpha_t = read_f64(in);
    s.meta.placer_options.inner_num = read_f64(in);
    s.meta.placer_options.algorithm =
        static_cast<place::PlaceAlgorithm>(static_cast<int>(read_u64(in)));
    s.meta.placement_cost = read_f64(in);
    s.meta.true_total_utilization = read_f64(in);
    s.meta.rudy_total = read_f64(in);
    s.meta.route_seconds = read_f64(in);
    s.meta.route_success = read_u64(in) != 0;
    s.meta.route_iterations = static_cast<Index>(read_u64(in));
    ds.samples.push_back(std::move(s));
  }
  ds.config.sweep.num_placements = static_cast<Index>(ds.samples.size());
  return ds;
}

}  // namespace paintplace::data
