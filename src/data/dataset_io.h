// Binary dataset cache: build_dataset() runs a full place-and-route sweep,
// which dominates experiment startup; save/load lets harnesses reuse the
// routed ground truth across runs and share datasets between machines.
#pragma once

#include <string>

#include "data/dataset.h"

namespace paintplace::data {

void save_dataset(const Dataset& dataset, const std::string& path);
Dataset load_dataset(const std::string& path);

}  // namespace paintplace::data
