#include "place/placement.h"

#include <algorithm>

namespace paintplace::place {

double crossing_factor(Index terminals) {
  // VPR's expected-crossing-count table (Cheng, "RISA"): index by terminal
  // count, linear extrapolation past 50.
  static constexpr double kTable[] = {
      1.0,    1.0,    1.0,    1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991, 1.4493,
      1.4974, 1.5455, 1.5937, 1.6418, 1.6899, 1.7304, 1.7709, 1.8114, 1.8519, 1.8924,
      1.9288, 1.9652, 2.0015, 2.0379, 2.0743, 2.1061, 2.1379, 2.1698, 2.2016, 2.2334,
      2.2646, 2.2958, 2.3271, 2.3583, 2.3895, 2.4187, 2.4479, 2.4772, 2.5064, 2.5356,
      2.5610, 2.5864, 2.6117, 2.6371, 2.6625, 2.6887, 2.7148, 2.7410, 2.7671, 2.7933};
  PP_CHECK(terminals >= 1);
  if (terminals <= 50) return kTable[static_cast<std::size_t>(terminals - 1)];
  return 2.7933 + 0.02616 * static_cast<double>(terminals - 50);
}

Placement::Placement(const Arch& arch, const Netlist& netlist)
    : arch_(&arch), netlist_(&netlist) {
  PP_CHECK_MSG(netlist.is_packed(), "placement needs a packed netlist");
  locs_.assign(static_cast<std::size_t>(netlist.num_blocks()), GridLoc{});
  occupancy_.assign(static_cast<std::size_t>(arch.width() * arch.height() *
                                             arch.params().io_ports_per_pad),
                    -1);
}

std::size_t Placement::slot_key(const GridLoc& slot) const {
  const Index subs = arch_->params().io_ports_per_pad;
  PP_CHECK(slot.valid() && slot.sub < subs && arch_->in_grid(slot.x, slot.y));
  return static_cast<std::size_t>((slot.y * arch_->width() + slot.x) * subs + slot.sub);
}

void Placement::random_init(Rng& rng) {
  std::fill(occupancy_.begin(), occupancy_.end(), -1);
  // Shuffle the slot list of each tile type, then deal slots to blocks.
  for (const TileType type :
       {TileType::kIo, TileType::kClb, TileType::kMem, TileType::kMult}) {
    std::vector<GridLoc> slots = arch_->slots(type);
    std::shuffle(slots.begin(), slots.end(), rng.engine());
    std::size_t next = 0;
    for (const fpga::Block& b : netlist_->blocks()) {
      if (fpga::tile_type_for(b.kind) != type) continue;
      PP_CHECK_MSG(next < slots.size(), "not enough " << fpga::tile_type_name(type)
                                                      << " slots for " << netlist_->name());
      locs_[static_cast<std::size_t>(b.id)] = slots[next];
      occupancy_[slot_key(slots[next])] = b.id;
      ++next;
    }
  }
}

bool Placement::is_placed() const {
  return std::all_of(locs_.begin(), locs_.end(), [](const GridLoc& l) { return l.valid(); });
}

BlockId Placement::block_at(const GridLoc& slot) const { return occupancy_[slot_key(slot)]; }

void Placement::move(BlockId b, const GridLoc& target) {
  PP_CHECK(b >= 0 && b < netlist_->num_blocks());
  PP_CHECK_MSG(block_at(target) < 0, "target slot occupied");
  PP_CHECK_MSG(arch_->tile_type(target.x, target.y) ==
                   fpga::tile_type_for(netlist_->block(b).kind),
               "target tile type mismatch");
  const GridLoc old = locs_[static_cast<std::size_t>(b)];
  if (old.valid()) occupancy_[slot_key(old)] = -1;
  locs_[static_cast<std::size_t>(b)] = target;
  occupancy_[slot_key(target)] = b;
}

void Placement::swap(BlockId a, BlockId b) {
  PP_CHECK(a >= 0 && a < netlist_->num_blocks() && b >= 0 && b < netlist_->num_blocks());
  PP_CHECK(a != b);
  const GridLoc la = locs_[static_cast<std::size_t>(a)];
  const GridLoc lb = locs_[static_cast<std::size_t>(b)];
  PP_CHECK(la.valid() && lb.valid());
  PP_CHECK_MSG(arch_->tile_type(la.x, la.y) == arch_->tile_type(lb.x, lb.y),
               "swap across tile types");
  locs_[static_cast<std::size_t>(a)] = lb;
  locs_[static_cast<std::size_t>(b)] = la;
  occupancy_[slot_key(la)] = b;
  occupancy_[slot_key(lb)] = a;
}

BBox Placement::net_bbox(NetId n) const {
  const fpga::Net& net = netlist_->net(n);
  const GridLoc d = loc(net.driver);
  PP_CHECK_MSG(d.valid(), "net bbox over unplaced netlist");
  BBox bb{d.x, d.x, d.y, d.y};
  for (BlockId s : net.sinks) {
    const GridLoc l = loc(s);
    PP_CHECK(l.valid());
    bb.xmin = std::min(bb.xmin, l.x);
    bb.xmax = std::max(bb.xmax, l.x);
    bb.ymin = std::min(bb.ymin, l.y);
    bb.ymax = std::max(bb.ymax, l.y);
  }
  return bb;
}

double Placement::net_cost(NetId n) const {
  const fpga::Net& net = netlist_->net(n);
  return crossing_factor(net.pin_count()) *
         static_cast<double>(net_bbox(n).half_perimeter());
}

double Placement::total_cost() const {
  double cost = 0.0;
  for (const fpga::Net& n : netlist_->nets()) cost += net_cost(n.id);
  return cost;
}

void Placement::validate() const {
  PP_CHECK_MSG(is_placed(), "placement incomplete");
  std::vector<bool> seen(occupancy_.size(), false);
  for (const fpga::Block& b : netlist_->blocks()) {
    const GridLoc l = loc(b.id);
    PP_CHECK_MSG(arch_->tile_type(l.x, l.y) == fpga::tile_type_for(b.kind),
                 "block " << b.name << " on wrong tile type");
    PP_CHECK_MSG(!arch_->is_corner(l.x, l.y), "block " << b.name << " on corner tile");
    const std::size_t key = slot_key(l);
    PP_CHECK_MSG(!seen[key], "slot collision at (" << l.x << "," << l.y << "," << l.sub << ")");
    seen[key] = true;
    PP_CHECK(occupancy_[key] == b.id);
  }
}

}  // namespace paintplace::place
