// Simulated-annealing placer in the VPR mould.
//
// The paper's datasets are produced by "sweeping the VPR placement options,
// including seed, ALPHA_T, INNER_NUM and place_algorithm" (Sec. 5); those
// four knobs are exactly the fields of PlacerOptions here.
#pragma once

#include <functional>

#include "place/placement.h"

namespace paintplace::place {

enum class PlaceAlgorithm : std::uint8_t {
  kAnnealing,  ///< classic SA with adaptive range limit (VPR bounding_box)
  kGreedy,     ///< zero-temperature descent (accept only improving moves)
};

const char* place_algorithm_name(PlaceAlgorithm a);

struct PlacerOptions {
  std::uint64_t seed = 1;
  double alpha_t = 0.9;        ///< temperature decay per outer iteration
  double inner_num = 1.0;      ///< moves per temperature = inner_num * N^(4/3)
  PlaceAlgorithm algorithm = PlaceAlgorithm::kAnnealing;
};

struct PlacerReport {
  double initial_cost = 0.0;
  double final_cost = 0.0;
  Index moves_attempted = 0;
  Index moves_accepted = 0;
  Index temperature_steps = 0;
};

class SaPlacer {
 public:
  /// Observer invoked during annealing (used by the paper's "visualizing the
  /// simulated annealing placement" application): receives the evolving
  /// placement, the number of accepted moves so far and the temperature.
  using SnapshotFn =
      std::function<void(const Placement&, Index accepted_moves, double temperature)>;

  SaPlacer(const Arch& arch, const Netlist& netlist, PlacerOptions options);

  /// Runs the full anneal from a fresh random start and returns the final
  /// placement (always legal; validated before return).
  Placement place();

  /// Registers `fn` to run after every `every_accepted` accepted moves.
  void set_snapshot(SnapshotFn fn, Index every_accepted);

  const PlacerReport& report() const { return report_; }

 private:
  const Arch* arch_;
  const Netlist* netlist_;
  PlacerOptions options_;
  PlacerReport report_;
  SnapshotFn snapshot_;
  Index snapshot_every_ = 0;
};

}  // namespace paintplace::place
