// Placement state: a legal assignment of every packed-netlist block to an
// architecture slot, with incremental HPWL bookkeeping for the annealer.
#pragma once

#include <vector>

#include "common/rng.h"
#include "fpga/arch.h"
#include "fpga/netlist.h"

namespace paintplace::place {

using fpga::Arch;
using fpga::BlockId;
using fpga::GridLoc;
using fpga::Netlist;
using fpga::NetId;
using fpga::TileType;
using paintplace::Index;

/// Axis-aligned net bounding box in tile coordinates.
struct BBox {
  Index xmin = 0, xmax = 0, ymin = 0, ymax = 0;
  Index half_perimeter() const { return (xmax - xmin) + (ymax - ymin); }
};

/// Expected-crossing-count factor q(t) applied to the half-perimeter of a
/// t-terminal net (VPR's classic correction for multi-terminal nets).
double crossing_factor(Index terminals);

class Placement {
 public:
  /// Requires a packed netlist whose demand fits the arch capacities.
  Placement(const Arch& arch, const Netlist& netlist);

  const Arch& arch() const { return *arch_; }
  const Netlist& netlist() const { return *netlist_; }

  /// Assigns every block a random legal slot (deterministic given rng).
  void random_init(Rng& rng);

  bool is_placed() const;
  GridLoc loc(BlockId b) const {
    PP_CHECK(b >= 0 && b < netlist_->num_blocks());
    return locs_[static_cast<std::size_t>(b)];
  }

  /// Block occupying a slot, or -1.
  BlockId block_at(const GridLoc& slot) const;

  /// Moves `b` to `target` (must be a legal, free slot of matching type).
  void move(BlockId b, const GridLoc& target);
  /// Swaps two placed blocks of the same tile type.
  void swap(BlockId a, BlockId b);

  /// Net bounding box over current locations (IO pads count at their tile).
  BBox net_bbox(NetId n) const;
  /// Weighted half-perimeter of one net: q(t) * hpwl(bbox).
  double net_cost(NetId n) const;
  /// Total weighted HPWL (recomputed from scratch — used for seeding and
  /// verification; the annealer tracks deltas itself).
  double total_cost() const;

  /// Throws CheckError unless every block sits on a distinct legal slot of
  /// the right tile type.
  void validate() const;

 private:
  std::size_t slot_key(const GridLoc& slot) const;

  const Arch* arch_;
  const Netlist* netlist_;
  std::vector<GridLoc> locs_;
  std::vector<BlockId> occupancy_;  // slot key -> block or -1
};

}  // namespace paintplace::place
