#include "place/sa_placer.h"

#include <algorithm>
#include <cmath>

namespace paintplace::place {

const char* place_algorithm_name(PlaceAlgorithm a) {
  switch (a) {
    case PlaceAlgorithm::kAnnealing: return "annealing";
    case PlaceAlgorithm::kGreedy: return "greedy";
  }
  return "?";
}

SaPlacer::SaPlacer(const Arch& arch, const Netlist& netlist, PlacerOptions options)
    : arch_(&arch), netlist_(&netlist), options_(options) {
  PP_CHECK_MSG(options.alpha_t > 0.0 && options.alpha_t < 1.0, "alpha_t must be in (0,1)");
  PP_CHECK_MSG(options.inner_num > 0.0, "inner_num must be positive");
}

void SaPlacer::set_snapshot(SnapshotFn fn, Index every_accepted) {
  PP_CHECK(every_accepted > 0);
  snapshot_ = std::move(fn);
  snapshot_every_ = every_accepted;
}

namespace {

/// Sum of net costs for the nets touching the given blocks (each net once).
double affected_cost(const Placement& p, const Netlist& nl, BlockId a, BlockId b,
                     std::vector<NetId>& scratch) {
  scratch.clear();
  for (NetId n : nl.nets_of(a)) scratch.push_back(n);
  if (b >= 0) {
    for (NetId n : nl.nets_of(b)) scratch.push_back(n);
  }
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
  double cost = 0.0;
  for (NetId n : scratch) cost += p.net_cost(n);
  return cost;
}

}  // namespace

Placement SaPlacer::place() {
  Rng rng(options_.seed);
  Placement p(*arch_, *netlist_);
  p.random_init(rng);
  report_ = PlacerReport{};
  report_.initial_cost = p.total_cost();

  // Movable blocks grouped by tile type so proposals stay legal.
  std::vector<BlockId> movable;
  for (const fpga::Block& b : netlist_->blocks()) movable.push_back(b.id);
  PP_CHECK_MSG(!movable.empty(), "nothing to place");

  const Index n_blocks = netlist_->num_blocks();
  const Index moves_per_temp = std::max<Index>(
      1, static_cast<Index>(options_.inner_num *
                            std::pow(static_cast<double>(n_blocks), 4.0 / 3.0)));

  double cost = report_.initial_cost;
  std::vector<NetId> scratch;

  // Initial temperature: VPR heuristic — 20x the std-dev of the cost change
  // over a probe sweep of random moves (annealing only).
  auto propose_and_apply = [&](double rlim, double temperature) -> bool {
    // Pick a movable block and a target slot of its tile type within rlim.
    const BlockId b = movable[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<Index>(movable.size()) - 1))];
    const TileType type = fpga::tile_type_for(netlist_->block(b).kind);
    const auto& slots = arch_->slots(type);
    if (slots.size() < 2) return false;
    const GridLoc from = p.loc(b);
    // Rejection-sample a slot within the range window.
    GridLoc to{};
    bool found = false;
    for (int attempt = 0; attempt < 12; ++attempt) {
      const GridLoc cand =
          slots[static_cast<std::size_t>(rng.uniform_int(0, static_cast<Index>(slots.size()) - 1))];
      if (cand == from) continue;
      if (std::abs(cand.x - from.x) > static_cast<Index>(rlim) ||
          std::abs(cand.y - from.y) > static_cast<Index>(rlim)) {
        continue;
      }
      to = cand;
      found = true;
      break;
    }
    if (!found) return false;

    const BlockId occupant = p.block_at(to);
    const double before = affected_cost(p, *netlist_, b, occupant, scratch);
    if (occupant >= 0) {
      p.swap(b, occupant);
    } else {
      p.move(b, to);
    }
    const double after = affected_cost(p, *netlist_, b, occupant, scratch);
    const double delta = after - before;

    bool accept;
    if (delta <= 0.0) {
      accept = true;
    } else if (options_.algorithm == PlaceAlgorithm::kGreedy || temperature <= 0.0) {
      accept = false;
    } else {
      accept = rng.uniform() < std::exp(-delta / temperature);
    }
    if (accept) {
      cost += delta;
      report_.moves_accepted += 1;
      if (snapshot_ && report_.moves_accepted % snapshot_every_ == 0) {
        snapshot_(p, report_.moves_accepted, temperature);
      }
    } else {
      // Undo.
      if (occupant >= 0) {
        p.swap(b, occupant);
      } else {
        p.move(b, from);
      }
    }
    report_.moves_attempted += 1;
    return accept;
  };

  double rlim = static_cast<double>(std::max(arch_->width(), arch_->height()));
  double temperature = 0.0;
  if (options_.algorithm == PlaceAlgorithm::kAnnealing) {
    // Probe sweep at infinite temperature to estimate the cost scale.
    double sum = 0.0, sum_sq = 0.0;
    const Index probes = std::min<Index>(n_blocks, 64);
    for (Index i = 0; i < probes; ++i) {
      const double before = cost;
      propose_and_apply(rlim, 1e30);
      const double d = cost - before;
      sum += d;
      sum_sq += d * d;
    }
    const double n = static_cast<double>(std::max<Index>(1, probes));
    const double var = std::max(0.0, sum_sq / n - (sum / n) * (sum / n));
    temperature = 20.0 * std::sqrt(var) + 1e-6;
  }

  const double exit_t =
      0.005 * std::max(1.0, cost) / static_cast<double>(std::max<Index>(1, netlist_->num_nets()));
  for (;;) {
    Index accepted_this_temp = 0;
    for (Index m = 0; m < moves_per_temp; ++m) {
      if (propose_and_apply(rlim, temperature)) accepted_this_temp += 1;
    }
    report_.temperature_steps += 1;
    const double accept_rate =
        static_cast<double>(accepted_this_temp) / static_cast<double>(moves_per_temp);
    // VPR range-limit adaptation: aim for ~44% acceptance.
    rlim = std::clamp(rlim * (1.0 - 0.44 + accept_rate), 1.0,
                      static_cast<double>(std::max(arch_->width(), arch_->height())));
    if (options_.algorithm == PlaceAlgorithm::kGreedy) {
      if (accepted_this_temp == 0) break;       // local minimum reached
      if (report_.temperature_steps >= 64) break;
    } else {
      temperature *= options_.alpha_t;
      if (temperature < exit_t) break;
      if (report_.temperature_steps >= 512) break;  // hard cap for safety
    }
  }

  report_.final_cost = p.total_cost();
  p.validate();
  return p;
}

}  // namespace paintplace::place
