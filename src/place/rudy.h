// RUDY (Rectangular Uniform wire DensitY, Spindler & Johannes 2007): the
// classical closed-form congestion estimate computable straight from a
// placement. Each net spreads its expected wirelength uniformly over its
// bounding box; summing over nets gives a per-tile demand map.
//
// Serves two roles here: a non-learned BASELINE the cGAN forecast is
// compared against (Table 2 harness), and an optional extra input feature.
#pragma once

#include <vector>

#include "place/placement.h"

namespace paintplace::place {

class RudyMap {
 public:
  explicit RudyMap(const Placement& placement);

  Index width() const { return width_; }
  Index height() const { return height_; }
  double at(Index x, Index y) const {
    PP_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return cells_[static_cast<std::size_t>(y * width_ + x)];
  }

  /// Sum over all tiles — a scalar congestion proxy for ranking placements.
  double total() const;
  double peak() const;

 private:
  Index width_, height_;
  std::vector<double> cells_;
};

}  // namespace paintplace::place
