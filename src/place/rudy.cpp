#include "place/rudy.h"

#include <algorithm>

namespace paintplace::place {

RudyMap::RudyMap(const Placement& placement)
    : width_(placement.arch().width()), height_(placement.arch().height()) {
  cells_.assign(static_cast<std::size_t>(width_ * height_), 0.0);
  const Netlist& nl = placement.netlist();
  for (const fpga::Net& net : nl.nets()) {
    const BBox bb = placement.net_bbox(net.id);
    // Expected wirelength (crossing-corrected half-perimeter) spread
    // uniformly over the bounding box area; degenerate boxes (single row or
    // column) still occupy one tile-wide strips.
    const double w = static_cast<double>(bb.xmax - bb.xmin + 1);
    const double h = static_cast<double>(bb.ymax - bb.ymin + 1);
    const double wirelength =
        crossing_factor(net.pin_count()) * static_cast<double>(bb.half_perimeter());
    if (wirelength <= 0.0) continue;  // single-tile net: no channel demand
    const double density = wirelength / (w * h);
    for (Index y = bb.ymin; y <= bb.ymax; ++y) {
      for (Index x = bb.xmin; x <= bb.xmax; ++x) {
        cells_[static_cast<std::size_t>(y * width_ + x)] += density;
      }
    }
  }
}

double RudyMap::total() const {
  double t = 0.0;
  for (double v : cells_) t += v;
  return t;
}

double RudyMap::peak() const {
  PP_CHECK(!cells_.empty());
  return *std::max_element(cells_.begin(), cells_.end());
}

}  // namespace paintplace::place
