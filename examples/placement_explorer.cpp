// Placement exploration for minimum congestion (application (a) of the
// paper, and the Top10 metric of Table 2): sweep the placer options to
// generate candidate placements, forecast every candidate's congestion
// WITHOUT routing it, and pick the least-congested ones; then route the
// winners to show the forecast ranked them correctly.
#include <algorithm>
#include <cstdio>

#include "core/explorer.h"
#include "data/dataset.h"
#include "fpga/design_suite.h"

using namespace paintplace;

int main() {
  std::printf("== Placement exploration for minimum congestion ==\n\n");

  // The raygentop design of Table 2, scaled for a CPU-sized demo.
  const fpga::DesignSpec spec = fpga::scale_spec(fpga::design_by_name("raygentop"), 0.04);
  const fpga::Netlist nl = fpga::generate_packed(spec, fpga::NetgenParams{}, 11);
  const fpga::NetlistStats stats = nl.stats();
  const fpga::Arch arch = fpga::Arch::auto_sized(
      {stats.num_clbs, stats.num_inputs + stats.num_outputs, stats.num_mems, stats.num_mults});
  std::printf("design raygentop (scaled): %lld CLBs, %lld nets on %s\n\n",
              static_cast<long long>(stats.num_clbs), static_cast<long long>(stats.num_nets),
              arch.summary().c_str());

  // Dataset = candidate placements with routed ground truth (the truth is
  // only used here to score how good the forecast ranking was).
  data::DatasetConfig dcfg;
  dcfg.image_width = 64;
  dcfg.sweep.num_placements = 20;
  const data::Dataset ds = data::build_dataset(nl, arch, dcfg);

  // Train on most candidates, hold out five for exploration.
  std::vector<const data::Sample*> train_set, candidates;
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    (i < 15 ? train_set : candidates).push_back(&ds.samples[i]);
  }
  core::Pix2PixConfig mcfg;
  mcfg.generator.image_size = 64;
  mcfg.generator.base_channels = 8;
  mcfg.generator.max_channels = 64;
  mcfg.disc_base_channels = 8;
  mcfg.adam.lr = 1e-3f;  // paper uses 2e-4 at full scale; faster at demo scale
  core::CongestionForecaster forecaster(mcfg);
  core::TrainConfig tcfg;
  tcfg.epochs = 20;
  forecaster.train(train_set, tcfg);

  core::PlacementExplorer explorer(forecaster);
  explorer.load_candidates(candidates);
  const auto ranking = explorer.ranking(core::Region::overall());

  std::printf("candidate placements ranked by FORECAST congestion (no routing run):\n");
  std::printf("%-6s %-12s %-22s %-18s\n", "rank", "candidate", "predicted congestion",
              "true congestion");
  for (std::size_t r = 0; r < ranking.size(); ++r) {
    std::printf("%-6zu #%-11lld %-22.4f %-18.4f\n", r + 1,
                static_cast<long long>(ranking[r].sample_index), ranking[r].predicted_score,
                ranking[r].true_score);
  }

  // Agreement between forecast order and true order.
  std::vector<double> pred, truth;
  for (const auto& p : ranking) {
    pred.push_back(p.predicted_score);
    truth.push_back(p.true_score);
  }
  std::printf("\nSpearman rank correlation (forecast vs routed truth): %.3f\n",
              data::spearman_rank_correlation(pred, truth));
  const auto best = explorer.pick(core::Region::overall(), core::Objective::kMinimize);
  std::printf("selected min-congestion candidate: #%lld\n",
              static_cast<long long>(best.sample_index));
  return 0;
}
