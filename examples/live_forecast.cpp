// Real-time congestion forecasting during placement (application (c):
// "visualizing the simulated annealing placement algorithm"). A snapshot
// hook re-renders the in-flight placement every N accepted moves and runs
// the generator, producing the frame sequence the paper publishes as GIFs —
// here dumped as PPM frames plus a printed congestion-vs-moves series.
#include <cstdio>
#include <filesystem>

#include "core/live_forecast.h"
#include "data/dataset.h"
#include "fpga/design_suite.h"
#include "place/sa_placer.h"

using namespace paintplace;

int main() {
  std::printf("== Live congestion forecast during simulated annealing ==\n\n");

  const fpga::DesignSpec spec = fpga::scale_spec(fpga::design_by_name("diffeq1"), 0.2);
  const fpga::Netlist nl = fpga::generate_packed(spec, fpga::NetgenParams{}, 31);
  const fpga::NetlistStats stats = nl.stats();
  const fpga::Arch arch = fpga::Arch::auto_sized(
      {stats.num_clbs, stats.num_inputs + stats.num_outputs, stats.num_mems, stats.num_mults});

  // Train a forecaster on a normal placement sweep of the same design.
  data::DatasetConfig dcfg;
  dcfg.image_width = 64;
  dcfg.sweep.num_placements = 16;
  const data::Dataset ds = data::build_dataset(nl, arch, dcfg);
  std::vector<const data::Sample*> train_set;
  for (const data::Sample& s : ds.samples) train_set.push_back(&s);

  core::Pix2PixConfig mcfg;
  mcfg.generator.image_size = 64;
  mcfg.generator.base_channels = 8;
  mcfg.generator.max_channels = 64;
  mcfg.disc_base_channels = 8;
  mcfg.adam.lr = 1e-3f;  // paper uses 2e-4 at full scale; faster at demo scale
  core::CongestionForecaster forecaster(mcfg);
  core::TrainConfig tcfg;
  tcfg.epochs = 20;
  forecaster.train(train_set, tcfg);

  // Anneal a fresh placement with the live hook attached.
  const img::PixelGeometry geom(arch, 256);
  core::LiveForecast live(forecaster, geom, 64, dcfg.lambda_connect);
  std::filesystem::create_directories("live_frames");
  live.set_dump_dir("live_frames");

  place::PlacerOptions opt;
  opt.seed = 99;
  place::SaPlacer placer(arch, nl, opt);
  placer.set_snapshot(
      [&](const place::Placement& p, Index moves, double t) { live.on_snapshot(p, moves, t); },
      /*every_accepted=*/250);
  placer.place();

  std::printf("%-10s %-14s %-22s %-14s\n", "frame", "moves", "forecast congestion", "HPWL");
  for (std::size_t i = 0; i < live.frames().size(); ++i) {
    const core::LiveFrame& f = live.frames()[i];
    std::printf("%-10zu %-14lld %-22.4f %-14.0f\n", i, static_cast<long long>(f.accepted_moves),
                f.predicted_congestion, f.placement_cost);
  }
  std::printf("\n%zu frames written to live_frames/ — congestion falls as HPWL improves\n",
              live.frames().size());
  return 0;
}
