// Constrained placement exploration (application (b), Figure 9): search a
// set of candidate placements for solutions that are maximally / minimally
// congested overall, and minimally congested in the upper, lower and
// right-hand regions of the floor plan — all from forecasts alone.
#include <cstdio>

#include "core/explorer.h"
#include "data/dataset.h"
#include "fpga/design_suite.h"
#include "img/image.h"

using namespace paintplace;

int main() {
  std::printf("== Constrained placement exploration (Fig. 9 style) ==\n\n");

  // The ode design, as in the paper's Fig. 9, scaled for a CPU demo.
  const fpga::DesignSpec spec = fpga::scale_spec(fpga::design_by_name("ode"), 0.02);
  const fpga::Netlist nl = fpga::generate_packed(spec, fpga::NetgenParams{}, 21);
  const fpga::NetlistStats stats = nl.stats();
  const fpga::Arch arch = fpga::Arch::auto_sized(
      {stats.num_clbs, stats.num_inputs + stats.num_outputs, stats.num_mems, stats.num_mults});

  data::DatasetConfig dcfg;
  dcfg.image_width = 64;
  dcfg.sweep.num_placements = 18;
  const data::Dataset ds = data::build_dataset(nl, arch, dcfg);

  std::vector<const data::Sample*> train_set, candidates;
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    (i < 12 ? train_set : candidates).push_back(&ds.samples[i]);
  }

  core::Pix2PixConfig mcfg;
  mcfg.generator.image_size = 64;
  mcfg.generator.base_channels = 8;
  mcfg.generator.max_channels = 64;
  mcfg.disc_base_channels = 8;
  mcfg.adam.lr = 1e-3f;  // paper uses 2e-4 at full scale; faster at demo scale
  core::CongestionForecaster forecaster(mcfg);
  core::TrainConfig tcfg;
  tcfg.epochs = 20;
  forecaster.train(train_set, tcfg);

  core::PlacementExplorer explorer(forecaster);
  explorer.load_candidates(candidates);

  // The five Fig. 9 queries, left to right.
  struct Query {
    const char* label;
    core::Region region;
    core::Objective objective;
  };
  const Query queries[] = {
      {"overall-max", core::Region::overall(), core::Objective::kMaximize},
      {"overall-min", core::Region::overall(), core::Objective::kMinimize},
      {"upper-min", core::Region::upper(), core::Objective::kMinimize},
      {"lower-min", core::Region::lower(), core::Objective::kMinimize},
      {"right-min", core::Region::right(), core::Objective::kMinimize},
  };

  std::printf("%-14s %-10s %-22s %-18s\n", "objective", "pick", "predicted (region)",
              "truth (region)");
  for (const Query& q : queries) {
    const core::ExplorationPick pick = explorer.pick(q.region, q.objective);
    std::printf("%-14s #%-9lld %-22.4f %-18.4f\n", q.label,
                static_cast<long long>(pick.sample_index), pick.predicted_score, pick.true_score);
    // Dump predicted and truth heat maps side by side, as in Fig. 9.
    img::write_image(img::Image::from_tensor(explorer.prediction(pick.sample_index)),
                     std::string("fig9_") + q.label + "_predicted.ppm");
    img::write_image(
        img::Image::from_tensor(
            candidates[static_cast<std::size_t>(pick.sample_index)]->target),
        std::string("fig9_") + q.label + "_truth.ppm");
  }
  std::printf("\nwrote fig9_<objective>_{predicted,truth}.ppm for all five objectives\n");
  return 0;
}
