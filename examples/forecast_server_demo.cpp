// Micro-batched forecast serving under placement traffic.
//
// Several simulated-annealing placer clients run concurrently, each
// snapshotting its in-flight placement every few hundred accepted moves,
// rendering it, and asking the ForecastServer for a congestion forecast.
// Their bursts coalesce into micro-batches, repeated snapshots of plateaued
// placements hit the result cache, and halfway through the run a fine-tuned
// checkpoint is hot-swapped in without dropping a single request.
//
// Pass a train_cgan checkpoint path as argv[1] to hot-swap that instead of
// the in-demo stand-in (it must be a 32x32, 4-channel model — e.g.
// `train_cgan --width 32 --out ckpts && forecast_server_demo ckpts/best.ckpt`).
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "backend/backend.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/forecaster.h"
#include "data/dataset.h"
#include "fpga/design_suite.h"
#include "place/sa_placer.h"
#include "serve/forecast_server.h"

using namespace paintplace;

namespace {

struct ClientFrame {
  int client = 0;
  Index moves = 0;
  double score = 0.0;
  std::uint64_t model_version = 0;
  bool from_cache = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16);
  const char* swap_ckpt = argc > 1 ? argv[1] : nullptr;
  std::printf("== forecast_server_demo: SA placer clients vs the serving engine ==\n");
  std::printf("compute backend: %s; pool workers: %d\n\n", backend::active_backend().name(),
              parallel_workers());

  constexpr Index kWidth = 32;
  const fpga::DesignSpec spec = fpga::scale_spec(fpga::design_by_name("diffeq1"), 0.12);
  const fpga::Netlist nl = fpga::generate_packed(spec, fpga::NetgenParams{}, 31);
  const fpga::NetlistStats stats = nl.stats();
  const fpga::Arch arch = fpga::Arch::auto_sized(
      {stats.num_clbs, stats.num_inputs + stats.num_outputs, stats.num_mems, stats.num_mults});

  data::DatasetConfig dcfg;
  dcfg.image_width = kWidth;
  dcfg.sweep.num_placements = 10;
  std::printf("building dataset (%lld placements of %s) ...\n",
              static_cast<long long>(dcfg.sweep.num_placements), spec.name.c_str());
  const data::Dataset ds = data::build_dataset(nl, arch, dcfg);
  std::vector<const data::Sample*> train_set;
  for (const data::Sample& s : ds.samples) train_set.push_back(&s);

  core::Pix2PixConfig mcfg;
  mcfg.generator.image_size = kWidth;
  mcfg.generator.base_channels = 8;
  mcfg.generator.max_channels = 64;
  mcfg.disc_base_channels = 8;
  mcfg.adam.lr = 1e-3f;

  // Base checkpoint (v1) plus a fine-tuned checkpoint (v2) to hot-swap
  // mid-traffic: a train_cgan checkpoint when one was passed on the command
  // line, else a longer-trained in-demo stand-in.
  std::shared_ptr<core::CongestionForecaster> tuned;
  std::string tuned_label = "fine-tuned";
  if (swap_ckpt != nullptr) {
    try {
      const core::Pix2PixConfig ckpt_cfg = core::Pix2Pix::peek_config(swap_ckpt);
      if (ckpt_cfg.generator.image_size == kWidth &&
          ckpt_cfg.generator.in_channels == mcfg.generator.in_channels &&
          ckpt_cfg.generator.out_channels == mcfg.generator.out_channels) {
        std::printf("hot-swap candidate: %s\n", swap_ckpt);
        tuned = std::make_shared<core::CongestionForecaster>(ckpt_cfg);
        tuned->load(swap_ckpt);
        tuned_label = swap_ckpt;
      } else {
        std::printf("checkpoint %s is %lldx%lld %lld->%lld-channel, demo needs %lldx%lld "
                    "%lld->%lld — using the in-demo stand-in instead\n",
                    swap_ckpt, static_cast<long long>(ckpt_cfg.generator.image_size),
                    static_cast<long long>(ckpt_cfg.generator.image_size),
                    static_cast<long long>(ckpt_cfg.generator.in_channels),
                    static_cast<long long>(ckpt_cfg.generator.out_channels),
                    static_cast<long long>(kWidth), static_cast<long long>(kWidth),
                    static_cast<long long>(mcfg.generator.in_channels),
                    static_cast<long long>(mcfg.generator.out_channels));
      }
    } catch (const std::exception& e) {
      std::printf("could not load checkpoint %s (%s) — using the in-demo stand-in instead\n",
                  swap_ckpt, e.what());
      tuned.reset();
    }
  }
  std::printf(tuned ? "training base checkpoint ...\n\n"
                    : "training base and fine-tuned checkpoints ...\n\n");
  auto base = std::make_shared<core::CongestionForecaster>(mcfg);
  core::TrainConfig tcfg;
  tcfg.epochs = 4;
  base->train(train_set, tcfg);
  if (!tuned) {
    tuned = std::make_shared<core::CongestionForecaster>(mcfg);
    core::TrainConfig tcfg2;
    tcfg2.epochs = 10;
    tuned->train(train_set, tcfg2);
  }

  serve::ServeConfig scfg;
  scfg.max_batch = 4;
  scfg.max_wait = std::chrono::microseconds(3000);
  serve::ForecastServer server(scfg, std::move(base), "base");

  const img::PixelGeometry geom(arch, dcfg.render_target_width);
  std::mutex frames_mu;
  std::vector<ClientFrame> frames;

  constexpr int kClients = 3;
  Timer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      place::PlacerOptions opt;
      opt.seed = 100 + static_cast<std::uint64_t>(c);
      place::SaPlacer placer(arch, nl, opt);
      placer.set_snapshot(
          [&](const place::Placement& p, Index moves, double /*temperature*/) {
            const nn::Tensor input = data::make_input(p, geom, kWidth, dcfg.lambda_connect);
            const serve::ForecastResult r = server.submit(input).get();
            std::lock_guard<std::mutex> lock(frames_mu);
            frames.push_back({c, moves, r.congestion_score, r.model_version, r.from_cache});
          },
          /*every_accepted=*/200);
      placer.place();
    });
  }

  // Hot-swap the fine-tuned checkpoint while the clients hammer away.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t v2 = server.publish_model(std::move(tuned), "fine-tuned");
  for (auto& t : clients) t.join();

  // Re-score the dataset's candidate placements twice, as a placement
  // explorer ranking a fixed set would — the second round is pure cache.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < 6 && i < ds.samples.size(); ++i) {
      (void)server.submit(ds.samples[i].input).get();
    }
  }
  const double elapsed = wall.seconds();

  std::printf("%-8s %-10s %-20s %-10s %-8s\n", "client", "moves", "forecast congestion",
              "model", "cached");
  for (const ClientFrame& f : frames) {
    std::printf("%-8d %-10lld %-20.4f v%-9llu %-8s\n", f.client,
                static_cast<long long>(f.moves), f.score,
                static_cast<unsigned long long>(f.model_version), f.from_cache ? "yes" : "no");
  }

  const serve::ServeStats s = server.stats();
  std::printf("\n%zu forecasts in %.2fs (%.1f req/s) — %llu batches, mean batch %.2f, "
              "max %llu, %llu cache hits, %llu coalesced\n",
              frames.size(), elapsed, static_cast<double>(frames.size()) / elapsed,
              static_cast<unsigned long long>(s.batches), s.mean_batch(),
              static_cast<unsigned long long>(s.max_batch),
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.coalesced));
  std::printf("hot-swapped to v%llu mid-run; %zu forecasts answered by the fine-tuned model\n",
              static_cast<unsigned long long>(v2),
              static_cast<std::size_t>(std::count_if(frames.begin(), frames.end(),
                                                     [&](const ClientFrame& f) {
                                                       return f.model_version == v2;
                                                     })));
  return 0;
}
