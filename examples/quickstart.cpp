// Quickstart: the full "painting on placement" pipeline on one small
// design — generate a netlist, pack it, place it, route it for ground
// truth, train a tiny cGAN on a placement sweep, and forecast the routing
// congestion heat map of a placement the model has never seen.
//
// Writes img_place / img_connect / img_route / predicted heat map as
// PPM/PGM files into the working directory.
#include <cstdio>

#include "core/forecaster.h"
#include "data/dataset.h"
#include "data/splits.h"
#include "fpga/netgen.h"
#include "fpga/pack.h"
#include "img/render.h"

using namespace paintplace;

int main() {
  std::printf("== Painting on Placement: quickstart ==\n\n");

  // 1. A small synthetic design, through the full Fig.-1 front end:
  //    flat LUT/FF netlist -> packed CLB netlist.
  fpga::DesignSpec spec;
  spec.name = "quickstart";
  spec.num_luts = 80;
  spec.num_ffs = 30;
  spec.num_inputs = 8;
  spec.num_outputs = 6;
  const fpga::Netlist flat = fpga::generate_flat(spec, fpga::NetgenParams{}, /*seed=*/1);
  const fpga::PackResult packed = fpga::pack(flat, fpga::PackParams{10});
  const fpga::NetlistStats stats = packed.packed.stats();
  std::printf("design: %lld LUTs, %lld FFs packed into %lld CLBs, %lld nets\n",
              static_cast<long long>(stats.num_luts), static_cast<long long>(stats.num_ffs),
              static_cast<long long>(stats.num_clbs), static_cast<long long>(stats.num_nets));

  // 2. Auto-size an island-style fabric and build a training dataset by
  //    sweeping the placer options (seed / alpha_t / inner_num / algorithm).
  const fpga::Arch arch = fpga::Arch::auto_sized(
      {stats.num_clbs, stats.num_inputs + stats.num_outputs, stats.num_mems, stats.num_mults});
  std::printf("fabric: %s\n", arch.summary().c_str());

  data::DatasetConfig dcfg;
  dcfg.image_width = 64;
  dcfg.sweep.num_placements = 16;
  const data::Dataset dataset = data::build_dataset(packed.packed, arch, dcfg);
  std::printf("dataset: %zu (img_place + lambda*img_connect, img_route) pairs\n\n",
              dataset.samples.size());

  // 3. Train the conditional GAN (U-Net generator + patch discriminator).
  core::Pix2PixConfig mcfg;
  mcfg.generator.image_size = 64;
  mcfg.generator.base_channels = 8;
  mcfg.generator.max_channels = 64;
  mcfg.disc_base_channels = 8;
  mcfg.adam.lr = 1e-3f;  // paper uses 2e-4 at full scale; faster at demo scale
  core::CongestionForecaster forecaster(mcfg);

  std::vector<const data::Sample*> train_set;
  for (std::size_t i = 1; i < dataset.samples.size(); ++i) {
    train_set.push_back(&dataset.samples[i]);
  }
  core::TrainConfig tcfg;
  tcfg.epochs = 30;
  tcfg.on_epoch = [](Index epoch, const core::GanLosses& l) {
    std::printf("epoch %2lld  D %.3f  G_gan %.3f  G_L1 %.3f\n", static_cast<long long>(epoch),
                l.d_loss, l.g_gan, l.g_l1);
  };
  forecaster.train(train_set, tcfg);

  // 4. Forecast the held-out placement (sample 0) and compare with truth.
  const data::Sample& held_out = dataset.samples[0];
  const nn::Tensor predicted = forecaster.predict(held_out.input);
  const double acc = data::per_pixel_accuracy(predicted, held_out.target);
  std::printf("\nheld-out placement: per-pixel accuracy %.1f%%\n", 100.0 * acc);
  std::printf("predicted congestion score %.4f (truth total utilization %.2f)\n",
              forecaster.congestion_score(predicted), held_out.meta.true_total_utilization);

  // 5. Dump the images for this placement: the img_place input channel
  //    (first 3 channels of x), the ground-truth heat map, the prediction.
  nn::Tensor place_rgb(nn::Shape{1, 3, 64, 64});
  for (Index c = 0; c < 3; ++c) {
    for (Index y = 0; y < 64; ++y) {
      for (Index x = 0; x < 64; ++x) place_rgb.at(0, c, y, x) = held_out.input.at(0, c, y, x);
    }
  }
  img::write_image(img::Image::from_tensor(place_rgb), "quickstart_place.ppm");
  img::write_image(img::Image::from_tensor(held_out.target), "quickstart_truth.ppm");
  img::write_image(img::Image::from_tensor(predicted), "quickstart_predicted.ppm");
  std::printf("\nwrote quickstart_place.ppm / quickstart_truth.ppm / quickstart_predicted.ppm\n");
  return 0;
}
